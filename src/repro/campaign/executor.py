"""The campaign point executor.

Runs a list of :class:`PointTask` grid points either serially (in
process, in grid order — exactly what the historical ``grid_sweep``
loop did) or fanned out over a pool of ``multiprocessing`` workers.
Either way the executor consults an optional
:class:`~repro.campaign.store.ResultStore` before computing a point,
persists fresh results back, journals per-point telemetry, and applies
a per-point timeout/retry policy so one pathological configuration can
neither hang nor abort a whole campaign.

The worker pool is deliberately not ``multiprocessing.Pool``: enforcing
a *hard* per-point timeout requires terminating the stuck worker
process and respawning it, which ``Pool`` cannot do for a single task.
Each worker is one long-lived process holding the workload trace,
receiving ``(index, trace_args, run_kwargs)`` tuples over a pipe and
replying with the pickled :class:`~repro.sim.results.SimulationResult`.
Results are therefore bit-identical to a serial run: the same
deterministic simulation executes, only in another process.

Fixed columnar workloads are not pickled into the workers at all:
the parent publishes the columns once into POSIX shared memory
(:meth:`~repro.traces.columnar.ColumnarTrace.share`) and ships only
the small :class:`~repro.traces.columnar.SharedTraceDescriptor`; each
worker (including respawns after a timeout) maps the same buffers
zero-copy. The parent owns the segment and unlinks it when the
campaign ends.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Sequence

from repro.errors import CampaignError
from repro.sim.results import SimulationResult
from repro.sim.runner import run_simulation
from repro.traces.columnar import ColumnarTrace, SharedTraceDescriptor
from repro.traces.record import IORequest

from repro.campaign.journal import RunJournal
from repro.campaign.store import ResultStore, result_key, workload_token

#: Computes one grid point: ``point_fn(workload, **run_kwargs)``.
PointFn = Callable[..., SimulationResult]

#: Worker id recorded for points the parent served from the store.
PARENT_WORKER = -1

#: Consecutive worker deaths (pool-wide, reset by any clean reply)
#: after which the parallel path concludes the environment is hostile
#: to subprocesses and falls back to serial execution in the parent.
SERIAL_FALLBACK_DEATHS = 3

#: Times one point may take its worker down before it is settled as
#: failed rather than requeued (a point that reliably kills workers
#: would otherwise starve the pool).
MAX_DEATHS_PER_TASK = 2


@dataclass(frozen=True)
class PointTask:
    """One grid point to execute."""

    index: int
    params: dict[str, Any]
    run_kwargs: dict[str, Any]
    #: Factory arguments when the workload is generated per point;
    #: ``None`` means "use the shared fixed trace".
    trace_args: dict[str, Any] | None = None


@dataclass(frozen=True)
class RetryPolicy:
    """Per-point fault policy.

    ``timeout_s`` is enforced only in parallel mode (enforcing it
    serially would require killing our own process; serial campaigns
    that set it get a ``RuntimeWarning`` and a journal entry instead of
    silence); ``retries`` is the number of *additional* attempts after
    the first. ``backoff_s`` spaces retries out exponentially: retry
    ``n`` (1-based) waits ``backoff_s * 2**(n-1)`` seconds, capped at
    ``backoff_max_s``; 0 (the default) retries immediately. Worker
    *deaths* are not charged against ``retries`` — a crashed process
    says nothing about the point, so the point is requeued (up to
    :data:`MAX_DEATHS_PER_TASK` deaths) with its retry budget intact.
    """

    timeout_s: float | None = None
    retries: int = 0
    backoff_s: float = 0.0
    backoff_max_s: float = 60.0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise CampaignError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.retries < 0:
            raise CampaignError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise CampaignError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_max_s <= 0:
            raise CampaignError(
                f"backoff_max_s must be > 0, got {self.backoff_max_s}"
            )

    def retry_delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), in seconds."""
        if self.backoff_s <= 0.0:
            return 0.0
        return min(self.backoff_s * (2.0 ** (attempt - 1)), self.backoff_max_s)


@dataclass
class PointOutcome:
    """What happened to one grid point."""

    task: PointTask
    status: str  # "ok" | "failed" | "timeout"
    result: SimulationResult | None = None
    cache_hit: bool = False
    wall_time_s: float = 0.0
    worker: int = PARENT_WORKER
    retries: int = 0
    key: str | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def journal_fields(self) -> dict[str, Any]:
        return {
            "index": self.task.index,
            "params": self.task.params,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "wall_time_s": round(self.wall_time_s, 6),
            "worker": self.worker,
            "retries": self.retries,
            "key": self.key,
            "error": self.error,
        }


def _worker_main(
    conn,
    worker_id: int,
    trace: Sequence[IORequest] | SharedTraceDescriptor | Callable,
    point_fn: PointFn,
) -> None:
    """Worker loop: receive a point, simulate, reply. ``None`` stops."""
    attached: ColumnarTrace | None = None
    if isinstance(trace, SharedTraceDescriptor):
        trace = attached = ColumnarTrace.from_shared(trace)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message is None:
                return
            index, trace_args, run_kwargs = message
            started = time.perf_counter()
            try:
                workload = (
                    trace(**trace_args) if trace_args is not None else trace
                )
                result = point_fn(workload, **run_kwargs)
                reply = (index, "ok", result, time.perf_counter() - started)
            except Exception:
                reply = (
                    index,
                    "error",
                    traceback.format_exc(limit=20),
                    time.perf_counter() - started,
                )
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                return
    finally:
        if attached is not None:
            attached.close()


class _Worker:
    """A long-lived simulation process plus its parent-side pipe end."""

    def __init__(self, ctx, worker_id, trace, point_fn) -> None:
        self.id = worker_id
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id, trace, point_fn),
            daemon=True,
            name=f"campaign-worker-{worker_id}",
        )
        self.process.start()
        child_conn.close()

    def submit(self, task: PointTask) -> None:
        self.conn.send((task.index, task.trace_args, task.run_kwargs))

    def stop(self) -> None:
        """Polite shutdown; used for idle workers."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.kill()
        self.conn.close()

    def kill(self) -> None:
        """Hard shutdown; used for timed-out or dead workers."""
        self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=5.0)
        self.conn.close()


@dataclass
class _Attempt:
    """Book-keeping for one in-flight point."""

    task: PointTask
    worker: _Worker
    tries: int  # attempts already failed before this one
    deaths: int = 0  # workers this point has taken down so far
    started: float = field(default_factory=time.perf_counter)

    def deadline(self, timeout_s: float | None) -> float | None:
        return None if timeout_s is None else self.started + timeout_s


def run_points(
    tasks: Sequence[PointTask],
    *,
    trace: Sequence[IORequest] | Callable,
    point_fn: PointFn = run_simulation,
    workers: int = 1,
    store: ResultStore | None = None,
    journal: RunJournal | None = None,
    retry: RetryPolicy | None = None,
    on_error: str = "raise",
) -> list[PointOutcome]:
    """Execute grid points, returning outcomes in task order.

    Args:
        tasks: The grid points; indices must be unique.
        trace: Shared fixed workload, or a factory called per point
            with the task's ``trace_args``.
        point_fn: Simulation entry point (defaults to
            :func:`~repro.sim.runner.run_simulation`). Must be
            picklable (module-level) when ``workers > 1``.
        workers: ``1`` runs serially in-process and in grid order,
            reproducing the classic sweep loop exactly; ``> 1`` fans
            out over that many processes.
        store: Optional result cache, consulted before any compute.
        journal: Optional JSONL telemetry sink.
        retry: Timeout/retry policy (default: no timeout, no retries).
        on_error: ``"raise"`` propagates the first exhausted failure
            (:class:`CampaignError`); ``"record"`` reports it in the
            outcome and keeps the campaign going.

    Returns:
        One :class:`PointOutcome` per task, ordered by task position.
    """
    if on_error not in ("raise", "record"):
        raise CampaignError(f"on_error must be 'raise' or 'record', not {on_error!r}")
    if workers < 1:
        raise CampaignError(f"workers must be >= 1, got {workers}")
    retry = retry or RetryPolicy()
    if workers == 1 and retry.timeout_s is not None:
        message = (
            f"RetryPolicy.timeout_s={retry.timeout_s} is only enforced in "
            "parallel mode (workers > 1); this serial campaign cannot time "
            "points out"
        )
        warnings.warn(message, RuntimeWarning, stacklevel=2)
        if journal is not None:
            journal.write("warning", message=message)

    outcomes: dict[int, PointOutcome] = {}
    pending: list[PointTask] = []
    for task in tasks:
        key = None
        if store is not None:
            key = result_key(
                workload_token(trace, task.trace_args), task.run_kwargs
            )
            cached = store.get(key)
            if cached is not None:
                outcomes[task.index] = PointOutcome(
                    task=task,
                    status="ok",
                    result=cached,
                    cache_hit=True,
                    key=key,
                )
                continue
        pending.append(task)

    if journal is not None:
        journal.write(
            "campaign",
            points=len(tasks),
            cached=len(outcomes),
            workers=workers,
            timeout_s=retry.timeout_s,
            retries=retry.retries,
            store=str(store.root) if store is not None else None,
        )
        # cache hits are final the moment they are discovered
        for index in sorted(outcomes):
            journal.write("point", **outcomes[index].journal_fields())

    def finalize(outcome: PointOutcome) -> None:
        outcomes[outcome.task.index] = outcome
        if store is not None and outcome.ok and not outcome.cache_hit:
            store.put(outcome.key, outcome.result, params=outcome.task.params)
        if journal is not None:
            journal.write("point", **outcome.journal_fields())

    def key_of(task: PointTask) -> str | None:
        if store is None:
            return None
        return result_key(workload_token(trace, task.trace_args), task.run_kwargs)

    if workers == 1:
        _run_serial(pending, trace, point_fn, retry, on_error, key_of, finalize)
    else:
        _run_parallel(
            pending, trace, point_fn, workers, retry, on_error, key_of,
            finalize, journal,
        )

    return [outcomes[task.index] for task in tasks]


def _run_serial(pending, trace, point_fn, retry, on_error, key_of, finalize):
    """In-process execution, grid order preserved."""
    for task in pending:
        tries = 0
        while True:
            started = time.perf_counter()
            try:
                workload = (
                    trace(**task.trace_args)
                    if task.trace_args is not None
                    else trace
                )
                result = point_fn(workload, **task.run_kwargs)
            except Exception as exc:
                if tries < retry.retries:
                    tries += 1
                    delay = retry.retry_delay(tries)
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                if on_error == "raise":
                    raise
                finalize(
                    PointOutcome(
                        task=task,
                        status="failed",
                        wall_time_s=time.perf_counter() - started,
                        retries=tries,
                        key=key_of(task),
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                break
            finalize(
                PointOutcome(
                    task=task,
                    status="ok",
                    result=result,
                    wall_time_s=time.perf_counter() - started,
                    worker=0,
                    retries=tries,
                    key=key_of(task),
                )
            )
            break


def _run_parallel(
    pending, trace, point_fn, workers, retry, on_error, key_of, finalize,
    journal=None,
):
    """Fan pending points out over a pool of worker processes.

    Queue entries are ``(task, tries, deaths, not_before)``: ``tries``
    counts genuine point failures (charged against the retry budget),
    ``deaths`` counts workers the point took down (charged against
    :data:`MAX_DEATHS_PER_TASK` instead), and ``not_before`` is the
    earliest monotonic instant the entry may be dispatched (retry
    backoff). When :data:`SERIAL_FALLBACK_DEATHS` workers die in a row
    without a single clean reply, the pool is abandoned — everything
    still unfinished runs serially in the parent, where a death would
    at least be *our* crash and therefore debuggable.
    """
    ctx = multiprocessing.get_context()
    pool_size = min(workers, len(pending))
    if pool_size == 0:
        return
    worker_trace = trace
    shm = None
    pool: list[_Worker] = []
    idle: deque[_Worker] = deque()
    queue: deque[tuple[PointTask, int, int, float]] = deque(
        (t, 0, 0, 0.0) for t in pending
    )
    inflight: dict[int, _Attempt] = {}  # worker id -> attempt
    failures: list[PointOutcome] = []
    consecutive_deaths = 0
    fallback: list[tuple[PointTask, int]] | None = None

    def respawn(worker: _Worker) -> _Worker:
        worker.kill()
        fresh = _Worker(ctx, worker.id, worker_trace, point_fn)
        pool[pool.index(worker)] = fresh
        return fresh

    def settle(outcome: PointOutcome) -> None:
        finalize(outcome)
        if not outcome.ok:
            failures.append(outcome)

    def retry_or_settle(attempt: _Attempt, status: str, error: str) -> None:
        if attempt.tries < retry.retries:
            tries = attempt.tries + 1
            not_before = time.perf_counter() + retry.retry_delay(tries)
            queue.appendleft((attempt.task, tries, attempt.deaths, not_before))
        else:
            settle(
                PointOutcome(
                    task=attempt.task,
                    status=status,
                    wall_time_s=time.perf_counter() - attempt.started,
                    worker=attempt.worker.id,
                    retries=attempt.tries,
                    key=key_of(attempt.task),
                    error=error,
                ),
            )

    def next_ready() -> tuple[PointTask, int, int, float] | None:
        """Pop the first queue entry whose backoff has elapsed."""
        now = time.perf_counter()
        for _ in range(len(queue)):
            entry = queue.popleft()
            if entry[3] <= now:
                return entry
            queue.append(entry)
        return None

    # Everything that allocates external resources — the shared-memory
    # segment and the worker processes — happens inside the try, so a
    # KeyboardInterrupt or spawn failure at any point still unlinks the
    # segment and reaps whatever part of the pool exists.
    try:
        # Ship a fixed columnar workload through shared memory: every
        # worker (and every respawn) maps the same buffers instead of
        # receiving its own pickled copy of the trace.
        if isinstance(trace, ColumnarTrace):
            try:
                worker_trace, shm = trace.share()
            except (ImportError, OSError, ValueError):
                worker_trace = trace  # no shared memory here: pickle as before
        for i in range(pool_size):
            pool.append(_Worker(ctx, i, worker_trace, point_fn))
        idle.extend(pool)

        while queue or inflight:
            while queue and idle:
                entry = next_ready()
                if entry is None:
                    break
                task, tries, deaths, _ = entry
                worker = idle.popleft()
                worker.submit(task)
                inflight[worker.id] = _Attempt(task, worker, tries, deaths)

            now = time.perf_counter()
            waits = [
                a.deadline(retry.timeout_s) - now
                for a in inflight.values()
                if a.deadline(retry.timeout_s) is not None
            ]
            if queue and idle:
                # everything queued is backing off: wake when the
                # soonest entry becomes dispatchable
                waits.append(min(entry[3] for entry in queue) - now)
            wait_for = max(0.0, min(waits)) if waits else None
            if not inflight:
                if wait_for:
                    time.sleep(wait_for)
                continue
            ready = connection_wait(
                [a.worker.conn for a in inflight.values()], timeout=wait_for
            )

            for conn in ready:
                if fallback is not None:
                    break  # pool abandoned mid-drain
                attempt = next(
                    a for a in inflight.values() if a.worker.conn is conn
                )
                worker = attempt.worker
                try:
                    _index, status, payload, elapsed = conn.recv()
                except (EOFError, OSError):
                    # worker died mid-point (crash, OOM-kill, ...); the
                    # death says nothing about the point, so requeue it
                    # without touching its retry budget — unless this
                    # point keeps killing workers.
                    del inflight[worker.id]
                    consecutive_deaths += 1
                    deaths = attempt.deaths + 1
                    if consecutive_deaths >= SERIAL_FALLBACK_DEATHS:
                        # The whole environment is killing workers, not
                        # this point: rescue everything unfinished (this
                        # point included) for the serial pass.
                        worker.kill()
                        fallback = sorted(
                            [(t, tr) for t, tr, _, _ in queue]
                            + [(attempt.task, attempt.tries)]
                            + [
                                (a.task, a.tries)
                                for a in inflight.values()
                            ],
                            key=lambda item: item[0].index,
                        )
                        queue.clear()
                        inflight.clear()
                        continue
                    if deaths >= MAX_DEATHS_PER_TASK:
                        settle(
                            PointOutcome(
                                task=attempt.task,
                                status="failed",
                                wall_time_s=(
                                    time.perf_counter() - attempt.started
                                ),
                                worker=worker.id,
                                retries=attempt.tries,
                                key=key_of(attempt.task),
                                error=(
                                    f"worker process died {deaths} times "
                                    "on this point"
                                ),
                            ),
                        )
                    else:
                        queue.appendleft(
                            (attempt.task, attempt.tries, deaths, 0.0)
                        )
                    idle.append(respawn(worker))
                    continue
                del inflight[worker.id]
                idle.append(worker)
                consecutive_deaths = 0
                if status == "ok":
                    settle(
                        PointOutcome(
                            task=attempt.task,
                            status="ok",
                            result=payload,
                            wall_time_s=elapsed,
                            worker=worker.id,
                            retries=attempt.tries,
                            key=key_of(attempt.task),
                        ),
                    )
                else:
                    retry_or_settle(attempt, "failed", payload)
            if fallback is not None:
                break

            if retry.timeout_s is not None:
                now = time.perf_counter()
                for attempt in [
                    a
                    for a in inflight.values()
                    if now >= a.deadline(retry.timeout_s)
                ]:
                    worker = attempt.worker
                    del inflight[worker.id]
                    idle.append(respawn(worker))
                    retry_or_settle(
                        attempt,
                        "timeout",
                        f"point exceeded {retry.timeout_s}s and was killed",
                    )
    finally:
        # unlink the segment even if reaping a worker raises: the
        # mapping dies with the workers, but the *name* outlives the
        # process unless unlink runs
        try:
            for worker in pool:
                if worker.id in inflight:
                    worker.kill()
                else:
                    worker.stop()
        finally:
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    if fallback is not None:
        message = (
            f"{SERIAL_FALLBACK_DEATHS} consecutive worker deaths; running "
            f"the remaining {len(fallback)} point(s) serially in the parent"
        )
        warnings.warn(message, RuntimeWarning, stacklevel=3)
        if journal is not None:
            journal.write(
                "serial_fallback",
                remaining=len(fallback),
                consecutive_deaths=SERIAL_FALLBACK_DEATHS,
            )
        _run_serial(
            [task for task, _ in fallback],
            trace, point_fn, retry, on_error, key_of, finalize,
        )

    if failures and on_error == "raise":
        summary = "; ".join(
            f"point {o.task.index} {o.task.params}: {o.status} ({o.error})"
            for o in failures[:5]
        )
        raise CampaignError(
            f"{len(failures)} grid point(s) failed after retries: {summary}"
        )
