"""JSONL run journals.

A journal is the campaign's flight recorder: one JSON object per line,
written as events happen so a crashed or interrupted campaign still
leaves a complete record of everything it did. Two event kinds:

* ``campaign`` — one header line per run: grid size, worker count,
  timeout/retry policy, store location.
* ``point`` — one line per grid point, in *completion* order: the
  point's index and parameters, status (``ok`` / ``failed`` /
  ``timeout``), cache hit flag, wall time, serving worker id (``-1``
  for cache hits served by the parent), retry count, and result key.

:func:`load_journal` reads a journal back; the analysis helpers in
:mod:`repro.analysis.campaigns` turn it into table records.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, TextIO

from repro.errors import CampaignError


class RunJournal:
    """Append-only JSONL writer, flushed per event.

    Records carry two ordering fields: ``at`` (wall-clock seconds, for
    humans correlating the journal with the outside world) and ``seq``
    (a per-journal monotonic counter). ``at`` alone cannot order
    records — two events inside the same clock tick (or across a clock
    step) collide — so readers needing write order must sort on
    ``seq``. When appending to an existing journal, ``seq`` resumes
    after the file's largest value, keeping it unique per file.
    """

    def __init__(self, path: str | Path, *, append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._seq = self._last_seq(self.path) if append else 0
        self._fh: TextIO | None = open(self.path, "a" if append else "w")

    @staticmethod
    def _last_seq(path: Path) -> int:
        if not path.exists():
            return 0
        last = 0
        with open(path) as fh:
            for line in fh:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # load_journal reports malformed lines
                if isinstance(record, dict):
                    seq = record.get("seq")
                    if isinstance(seq, int) and seq > last:
                        last = seq
        return last

    def write(self, event: str, **fields: Any) -> None:
        """Emit one event line."""
        if self._fh is None:
            raise CampaignError(f"journal {self.path} already closed")
        self._seq += 1
        record = {
            "event": event,
            "at": round(time.time(), 3),
            "seq": self._seq,
            **fields,
        }
        self._fh.write(json.dumps(record, sort_keys=True, default=repr) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def load_journal(path: str | Path) -> list[dict[str, Any]]:
    """All events of a journal file, in write order.

    Raises:
        CampaignError: If the file is missing or a line is not JSON.
    """
    path = Path(path)
    if not path.exists():
        raise CampaignError(f"no journal at {path}")
    events: list[dict[str, Any]] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise CampaignError(
                    f"{path}:{line_no}: malformed journal line"
                ) from exc
    return events
