"""Parallel experiment campaigns with content-addressed result caching.

A *campaign* is a grid of simulation points executed through a worker
pool, backed by an on-disk :class:`~repro.campaign.store.ResultStore`
so re-running a campaign skips already-computed points, and journaled
point-by-point to a JSONL :class:`~repro.campaign.journal.RunJournal`
(wall time, worker id, cache hit/miss, retries). A per-point
timeout/retry policy keeps one pathological configuration from hanging
or aborting the whole campaign.

Layers:

* :mod:`repro.campaign.store` — content-addressed result cache. The
  key is a stable hash of (trace fingerprint, grid-point parameters,
  code-version salt), so cache entries are invalidated whenever the
  workload, the configuration, or the simulator source changes.
* :mod:`repro.campaign.journal` — append-only JSONL run telemetry.
* :mod:`repro.campaign.executor` — the point executor: serial or
  ``multiprocessing`` fan-out with per-point timeout and retries.
  :func:`repro.sim.sweep.grid_sweep` is a thin client of it.
* :mod:`repro.campaign.spec` — declarative campaign spec files (JSON)
  and the one-call :func:`~repro.campaign.spec.run_campaign` used by
  the ``repro campaign`` CLI subcommand.
"""

from repro.campaign.executor import (
    PointOutcome,
    PointTask,
    RetryPolicy,
    run_points,
)
from repro.campaign.journal import RunJournal, load_journal
from repro.campaign.spec import CampaignSpec, run_campaign
from repro.campaign.store import ResultStore, code_version_salt, result_key

__all__ = [
    "CampaignSpec",
    "PointOutcome",
    "PointTask",
    "ResultStore",
    "RetryPolicy",
    "RunJournal",
    "code_version_salt",
    "load_journal",
    "result_key",
    "run_campaign",
    "run_points",
]
