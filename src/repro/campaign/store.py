"""Content-addressed on-disk result store.

Each completed grid point is persisted as one JSON file named by its
*result key* — a SHA-256 over three ingredients:

1. a **workload token**: the trace fingerprint
   (:func:`repro.traces.fingerprint.trace_fingerprint`) for a fixed
   trace, or the factory's source hash plus its per-point arguments
   for generated workloads;
2. the **simulation parameters**: the grid point's full keyword set,
   canonically JSON-encoded (sorted keys);
3. a **code-version salt**: a hash over every ``.py`` source file of
   the installed ``repro`` package, so editing the simulator silently
   invalidates every cached result instead of serving stale numbers.

Entries are written atomically (tempfile + ``fsync`` + ``os.replace``,
so a crash mid-write leaves either the old entry or the new one, never
a torn file; stale temporaries are swept on open) and sharded
into two-character subdirectories to keep directory listings small on
large campaigns.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import CampaignError
from repro.sim.results import SimulationResult
from repro.traces.fingerprint import trace_fingerprint
from repro.traces.record import IORequest

_STORE_FORMAT = 1


@lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Hash of the installed ``repro`` sources (cached per process)."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def callable_token(fn: Callable) -> str:
    """Stable identity for a trace factory: qualname + source hash.

    Falls back to the qualified name alone when the source is
    unavailable (builtins, C extensions); ``functools.partial`` objects
    are unwrapped so the bound arguments participate in the token.
    """
    from functools import partial

    if isinstance(fn, partial):
        bound = json.dumps(
            {"args": fn.args, "kwargs": fn.keywords},
            sort_keys=True,
            default=repr,
        )
        return f"partial({callable_token(fn.func)},{bound})"
    name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        return name
    return f"{name}#{hashlib.sha256(source.encode()).hexdigest()[:16]}"


def workload_token(
    trace: Sequence[IORequest] | Callable,
    trace_args: dict[str, Any] | None = None,
) -> str:
    """Identity of the workload a grid point runs against."""
    if callable(trace):
        args = json.dumps(trace_args or {}, sort_keys=True, default=repr)
        return f"factory:{callable_token(trace)}:{args}"
    return f"trace:{trace_fingerprint(trace)}"


def result_key(
    workload: str,
    run_kwargs: dict[str, Any],
    *,
    salt: str | None = None,
) -> str:
    """The content address of one grid point's result."""
    payload = json.dumps(
        {
            "format": _STORE_FORMAT,
            "workload": workload,
            "kwargs": run_kwargs,
            "salt": salt if salt is not None else code_version_salt(),
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultStore:
    """Directory of content-addressed simulation results.

    Opening a store sweeps out ``*.tmp`` droppings left by writers that
    crashed between ``mkstemp`` and ``os.replace`` — they are invisible
    to lookups but would otherwise accumulate forever.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        for stale in self.root.glob("*/*.tmp"):
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent sweep
                pass

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def get(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            return SimulationResult.from_dict(payload["result"])
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise CampaignError(f"corrupt store entry {path}: {exc}") from exc

    def put(
        self,
        key: str,
        result: SimulationResult,
        params: dict[str, Any] | None = None,
    ) -> None:
        """Persist ``result`` under ``key`` (atomic, last write wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": _STORE_FORMAT,
            "key": key,
            "params": params or {},
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, default=repr)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
