"""Declarative campaign specifications.

A campaign spec is a small JSON file describing a whole experiment
grid — the workload, the swept axes, and the fixed simulation
parameters — so a study is one reviewable artifact runnable with one
command (``repro campaign spec.json --workers 4``)::

    {
        "name": "policy-vs-cache-size",
        "trace": {"file": "oltp.csv"},
        "axes": {
            "policy": ["lru", "pa-lru"],
            "cache_blocks": [512, 2048, 8192]
        },
        "fixed": {"dpm": "practical"},
        "num_disks": 21
    }

Instead of a ``file``, the workload may name a generator, optionally
re-parameterized by axes routed through ``trace_params``::

    {
        "trace": {"workload": "synthetic",
                  "params": {"num_requests": 5000, "seed": 7}},
        "trace_params": ["write_ratio"],
        "axes": {"write_ratio": [0.0, 0.3, 0.6], "policy": ["lru"]}
    }

A workload *list* sweeps whole families as an implicit ``workload``
axis (each family regenerated per grid point through the streaming
generators), optionally re-parameterized per family::

    {
        "trace": {"workload": ["dbms", "cdn", "tenant"],
                  "params": {"duration_s": 300},
                  "per_workload": {"cdn": {"num_disks": 18}}},
        "axes": {"policy": ["lru", "pa-lru"]},
        "num_disks": 18
    }

:func:`run_campaign` executes a spec through the campaign executor and
returns the familiar :class:`~repro.sim.sweep.SweepResult`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import CampaignError
from repro.traces.cello import CelloTraceConfig, generate_cello_trace
from repro.traces.io import load_trace
from repro.traces.oltp import OLTPTraceConfig, generate_oltp_trace
from repro.traces.record import IORequest
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.traces.zoo import (
    CDNTraceConfig,
    DBMSTraceConfig,
    TenantTraceConfig,
    generate_cdn_trace,
    generate_dbms_trace,
    generate_tenant_trace,
)

_GENERATORS: dict[str, tuple[type, Callable]] = {
    "oltp": (OLTPTraceConfig, generate_oltp_trace),
    "cello": (CelloTraceConfig, generate_cello_trace),
    "synthetic": (SyntheticTraceConfig, generate_synthetic_trace),
    "dbms": (DBMSTraceConfig, generate_dbms_trace),
    "cdn": (CDNTraceConfig, generate_cdn_trace),
    "tenant": (TenantTraceConfig, generate_tenant_trace),
}

_SPEC_KEYS = {
    "name",
    "trace",
    "trace_params",
    "axes",
    "fixed",
    "num_disks",
    "cache_blocks",
}


def generated_trace(workload: str, **params: Any) -> Sequence[IORequest]:
    """Build a trace from a named generator (picklable factory target)."""
    try:
        config_cls, generate = _GENERATORS[workload]
    except KeyError:
        raise CampaignError(
            f"unknown workload {workload!r}; expected one of "
            f"{sorted(_GENERATORS)}"
        ) from None
    try:
        return generate(config_cls(**params))
    except TypeError as exc:
        raise CampaignError(f"bad {workload} generator params: {exc}") from exc


def workload_cell_trace(
    workload: str,
    shared_params: dict | None = None,
    per_workload: dict | None = None,
    **overrides: Any,
) -> Sequence[IORequest]:
    """Per-grid-point factory for specs sweeping a ``workload`` axis.

    Merges, lowest precedence first: ``shared_params`` (the spec's
    ``trace.params``), the cell's entry in ``per_workload`` (the spec's
    ``trace.per_workload``), and any swept ``trace_params`` overrides.
    Picklable and partial-friendly, so the campaign result store can
    key cache entries on the bound arguments.
    """
    params = dict(shared_params or {})
    params.update((per_workload or {}).get(workload, {}))
    params.update(overrides)
    return generated_trace(workload, **params)


@dataclass
class CampaignSpec:
    """A validated experiment grid."""

    axes: dict[str, list[Any]]
    trace: dict[str, Any]
    fixed: dict[str, Any] = field(default_factory=dict)
    trace_params: tuple[str, ...] = ()
    num_disks: int | None = None
    cache_blocks: int | None = 2048
    name: str = "campaign"
    #: Directory trace file paths are resolved against.
    base_dir: Path = field(default_factory=Path)

    def __post_init__(self) -> None:
        workload = self.trace.get("workload")
        if isinstance(workload, (list, tuple)):
            # A workload list is an implicit "workload" axis: every
            # family becomes one slice of the grid, regenerated per
            # point through the trace factory.
            if not workload or not all(isinstance(w, str) for w in workload):
                raise CampaignError(
                    "'trace.workload' list must be non-empty workload names"
                )
            if "workload" in self.axes or "workload" in self.fixed:
                raise CampaignError(
                    "a workload list already defines the 'workload' axis"
                )
            self.axes = {"workload": list(workload), **self.axes}
            self.trace_params = tuple(self.trace_params) + ("workload",)
        per_workload = self.trace.get("per_workload")
        if per_workload is not None:
            if not isinstance(workload, (list, tuple)):
                raise CampaignError(
                    "'trace.per_workload' needs a 'trace.workload' list"
                )
            unknown_pw = set(per_workload) - set(workload)
            if unknown_pw:
                raise CampaignError(
                    f"per_workload entries not in the workload list: "
                    f"{sorted(unknown_pw)}"
                )
        if not self.axes:
            raise CampaignError("campaign spec needs at least one axis")
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise CampaignError(
                    f"axis {axis!r} must be a non-empty list of values"
                )
        overlap = set(self.fixed) & set(self.axes)
        if overlap:
            raise CampaignError(
                f"parameters both fixed and swept: {sorted(overlap)}"
            )
        unknown_tp = set(self.trace_params) - set(self.axes)
        if unknown_tp:
            raise CampaignError(
                f"trace_params not in axes: {sorted(unknown_tp)}"
            )
        has_file = "file" in self.trace
        has_workload = "workload" in self.trace
        if has_file == has_workload:
            raise CampaignError(
                "spec 'trace' needs exactly one of 'file' or 'workload'"
            )
        if self.trace_params and has_file:
            raise CampaignError(
                "trace_params requires a generated workload, not a trace file"
            )

    @classmethod
    def from_dict(
        cls, data: dict[str, Any], base_dir: str | Path = "."
    ) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise CampaignError("campaign spec must be a JSON object")
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise CampaignError(f"unknown spec keys: {sorted(unknown)}")
        for required in ("axes", "trace"):
            if required not in data:
                raise CampaignError(f"campaign spec is missing {required!r}")
        return cls(
            axes=dict(data["axes"]),
            trace=dict(data["trace"]),
            fixed=dict(data.get("fixed", {})),
            trace_params=tuple(data.get("trace_params", ())),
            num_disks=data.get("num_disks"),
            cache_blocks=data.get("cache_blocks", 2048),
            name=data.get("name", "campaign"),
            base_dir=Path(base_dir),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "CampaignSpec":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise CampaignError(f"no campaign spec at {path}") from None
        except json.JSONDecodeError as exc:
            raise CampaignError(f"{path} is not valid JSON: {exc}") from exc
        spec = cls.from_dict(data, base_dir=path.parent)
        if spec.name == "campaign":
            spec.name = path.stem
        return spec

    def grid_size(self) -> int:
        return math.prod(len(values) for values in self.axes.values())

    def load_workload(self) -> Sequence[IORequest] | Callable:
        """The fixed trace, or a picklable per-point factory."""
        if "file" in self.trace:
            return load_trace(self.base_dir / self.trace["file"])
        workload = self.trace["workload"]
        params = dict(self.trace.get("params", {}))
        if isinstance(workload, (list, tuple)):
            return partial(
                workload_cell_trace,
                shared_params=params,
                per_workload=dict(self.trace.get("per_workload") or {}),
            )
        if self.trace_params:
            return partial(generated_trace, workload, **params)
        return generated_trace(workload, **params)

    def resolve_num_disks(self, workload) -> int:
        """Explicit ``num_disks``, or inferred from a fixed workload."""
        if self.num_disks is not None:
            return self.num_disks
        if callable(workload):
            raise CampaignError(
                "num_disks must be given when the workload is generated "
                "per grid point"
            )
        if not len(workload):
            return 1
        disks = getattr(workload, "disks", None)
        if disks is not None:
            # columnar trace: read the column, skip boxing every row
            return int(max(disks)) + 1
        return max(r.disk for r in workload) + 1


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    store=None,
    journal=None,
    retry=None,
    on_error: str = "record",
):
    """Execute a campaign spec; returns its
    :class:`~repro.sim.sweep.SweepResult`.

    Campaigns default to ``on_error="record"``: a failing grid point is
    journaled and skipped rather than aborting the run.
    """
    from repro.sim.sweep import grid_sweep

    workload = spec.load_workload()
    return grid_sweep(
        workload,
        axes=spec.axes,
        trace_params=spec.trace_params,
        num_disks=spec.resolve_num_disks(workload),
        cache_blocks=spec.cache_blocks,
        workers=workers,
        store=store,
        journal=journal,
        retry=retry,
        on_error=on_error,
        **spec.fixed,
    )
