"""Reporting helpers: ASCII tables and per-figure data builders.

The benchmark harness (``benchmarks/``) uses these to regenerate every
table and figure of the paper's evaluation as printable series/rows.
"""

from repro.analysis.campaigns import (
    campaign_summary,
    journal_point_records,
    summary_table,
)
from repro.analysis.figures import (
    belady_counterexample,
    envelope_series,
    interval_cdf_series,
    replacement_comparison,
    savings_series,
    spinup_cost_sweep,
    time_breakdown_comparison,
    write_policy_sweep,
)
from repro.analysis.tables import ascii_table, format_fraction, format_joules

__all__ = [
    "ascii_table",
    "belady_counterexample",
    "campaign_summary",
    "envelope_series",
    "format_fraction",
    "format_joules",
    "interval_cdf_series",
    "journal_point_records",
    "replacement_comparison",
    "savings_series",
    "spinup_cost_sweep",
    "summary_table",
    "time_breakdown_comparison",
    "write_policy_sweep",
]
