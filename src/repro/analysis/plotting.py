"""Terminal plotting: horizontal bar charts and sparklines.

The examples and benchmark reports run in environments without a
display or matplotlib, so figures are rendered as aligned unicode/ASCII
charts. Values are auto-scaled to the available width.
"""

from __future__ import annotations

from typing import Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart, one row per (label, value).

    Bars scale to the maximum value; negative values render as empty
    bars with their number still shown.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title
    peak = max(max(values), 0.0)
    label_w = max(len(str(lab)) for lab in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = round(width * value / peak) if peak > 0 else 0
        bar = "█" * max(0, filled)
        lines.append(
            f"{str(label):>{label_w}}  {bar:<{width}}  {value:g}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series (min→max over 8 levels)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK_LEVELS[
            min(len(_SPARK_LEVELS) - 1, int((v - lo) / span * len(_SPARK_LEVELS)))
        ]
        for v in values
    )


def percent_bars(
    labels: Sequence[str],
    fractions: Sequence[float],
    width: int = 40,
    title: str = "",
) -> str:
    """Bars for values in [0, 1], scaled to a fixed 100% width."""
    if len(labels) != len(fractions):
        raise ValueError("labels and fractions must have equal length")
    label_w = max((len(str(lab)) for lab in labels), default=0)
    lines = [title] if title else []
    for label, fraction in zip(labels, fractions):
        clamped = min(max(fraction, 0.0), 1.0)
        bar = "█" * round(width * clamped)
        lines.append(
            f"{str(label):>{label_w}}  {bar:<{width}}  {fraction:.1%}"
        )
    return "\n".join(lines)
