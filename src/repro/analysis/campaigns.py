"""Campaign journal analysis.

Loads the JSONL run journals written by
:class:`repro.campaign.journal.RunJournal` back into flat records for
tables: per-point telemetry rows (grid parameters + status + cache
hit + wall time) and whole-campaign rollups (hit rate, failure count,
total compute time). These are the campaign-side counterparts of
:meth:`repro.sim.sweep.SweepResult.records`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.analysis.tables import ascii_table
from repro.campaign.journal import load_journal


def journal_point_records(path: str | Path) -> list[dict[str, Any]]:
    """Flat per-point rows from a journal, sorted by grid index.

    Each row carries the point's sweep parameters (flattened into the
    record, like sweep records do) plus the executor telemetry:
    ``status``, ``cache_hit``, ``wall_time_s``, ``worker``, ``retries``.
    """
    records = []
    for event in load_journal(path):
        if event.get("event") != "point":
            continue
        records.append(
            {
                "index": event.get("index"),
                **event.get("params", {}),
                "status": event.get("status"),
                "cache_hit": bool(event.get("cache_hit")),
                "wall_time_s": event.get("wall_time_s", 0.0),
                "worker": event.get("worker"),
                "retries": event.get("retries", 0),
                "error": event.get("error"),
            }
        )
    records.sort(key=lambda r: (r["index"] is None, r["index"]))
    return records


def campaign_summary(path: str | Path) -> dict[str, Any]:
    """Whole-campaign rollup of one journal."""
    header: dict[str, Any] = {}
    for event in load_journal(path):
        if event.get("event") == "campaign":
            header = event
            break
    points = journal_point_records(path)
    hits = sum(r["cache_hit"] for r in points)
    computed = [r for r in points if not r["cache_hit"]]
    failed = [r for r in points if r["status"] != "ok"]
    compute_s = sum(r["wall_time_s"] for r in computed)
    return {
        "points": len(points),
        "cache_hits": hits,
        "hit_rate": hits / len(points) if points else 0.0,
        "computed": len(computed),
        "failed": len(failed),
        "retries": sum(r["retries"] for r in points),
        "workers": header.get("workers"),
        "compute_time_s": compute_s,
        "mean_point_s": compute_s / len(computed) if computed else 0.0,
    }


def summary_table(path: str | Path) -> str:
    """The rollup as a two-column ASCII table for CLI output."""
    summary = campaign_summary(path)
    rows = [
        ["grid points", summary["points"]],
        ["cache hits", f"{summary['cache_hits']} ({summary['hit_rate']:.0%})"],
        ["simulated", summary["computed"]],
        ["failed", summary["failed"]],
        ["retries", summary["retries"]],
        ["workers", summary["workers"]],
        ["compute time", f"{summary['compute_time_s']:.2f} s"],
        ["mean point time", f"{summary['mean_point_s']:.2f} s"],
    ]
    return ascii_table(["metric", "value"], rows, title="campaign summary")
