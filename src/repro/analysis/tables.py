"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Sequence

from repro.units import KILO, MEGA


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; columns are sized to their widest cell.
    """
    table = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in table)
    return "\n".join(parts)


def format_joules(energy_j: float) -> str:
    """Joules with adaptive units (J / kJ / MJ)."""
    if abs(energy_j) >= MEGA:
        return f"{energy_j / MEGA:.2f} MJ"
    if abs(energy_j) >= KILO:
        return f"{energy_j / KILO:.1f} kJ"
    return f"{energy_j:.1f} J"


def format_fraction(value: float) -> str:
    """A ratio as a percentage string."""
    return f"{value * 100:.1f}%"
