"""Data builders for every figure of the paper's evaluation.

Each function computes the series/rows one paper figure plots, from the
library's own primitives, so benchmarks and examples never duplicate
experiment logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cache.policies.belady import BeladyPolicy
from repro.core.energy_optimal import idle_energy_of, simulate_misses
from repro.core.opg import OPGPolicy
from repro.power.envelope import EnergyEnvelope
from repro.power.modes import PowerModel
from repro.power.specs import scale_spinup_cost
from repro.sim.results import SimulationResult
from repro.sim.runner import run_simulation
from repro.traces.record import IORequest


# -- Figures 2 and 4: the envelopes -------------------------------------------

def envelope_series(
    model: PowerModel, interval_lengths: Sequence[float]
) -> dict[str, list[float]]:
    """Figure 2: per-mode energy lines and the lower envelope."""
    envelope = EnergyEnvelope(model)
    series: dict[str, list[float]] = {
        mode.name: [envelope.line_energy(mode.index, t) for t in interval_lengths]
        for mode in model
    }
    series["E_min (envelope)"] = [
        envelope.min_energy(t) for t in interval_lengths
    ]
    return series


def savings_series(
    model: PowerModel, interval_lengths: Sequence[float]
) -> dict[str, list[float]]:
    """Figure 4: per-mode savings lines and the upper envelope."""
    envelope = EnergyEnvelope(model)
    series: dict[str, list[float]] = {}
    for mode in model:
        if mode.index == 0:
            continue
        series[mode.name] = [
            max(envelope.savings(mode.index, t), 0.0)
            for t in interval_lengths
        ]
    series["S_max (envelope)"] = [
        envelope.max_savings(t) for t in interval_lengths
    ]
    return series


# -- Figure 3: the Belady counterexample ------------------------------------------

@dataclass(frozen=True)
class CounterexampleResult:
    """Outcome of the Figure 3 worked example."""

    belady_misses: int
    power_aware_misses: int
    belady_energy: float
    power_aware_energy: float


def belady_counterexample() -> CounterexampleResult:
    """Reproduce Figure 3: Belady minimizes misses, not energy.

    The paper's setting: a 4-entry cache, a 2-mode disk that spins down
    after 10 idle time-units, and the request string
    ``A B C D E B E C D … A`` where the final ``A`` arrives at t=16.
    Misses clustered together let the disk sleep longer, so an
    algorithm taking two *more* misses spends *less* energy. We price
    idle gaps with the threshold scheme of the example: the disk burns
    1 unit/time for min(gap, 10) and sleeps for free afterwards.
    """
    blocks = {c: ord(c) for c in "ABCDE"}
    times = {0: "A", 1: "B", 2: "C", 3: "D", 4: "E", 5: "B", 6: "E",
             7: "C", 8: "D", 16: "A"}
    accesses = [(float(t), (0, blocks[c])) for t, c in sorted(times.items())]

    def threshold_energy(gap: float) -> float:
        return min(gap, 10.0)

    end_time = 30.0
    belady = simulate_misses(accesses, 4, BeladyPolicy())
    power_aware = simulate_misses(
        accesses, 4, OPGPolicy(threshold_energy, tail_s=end_time - 16.0)
    )
    return CounterexampleResult(
        belady_misses=len(belady),
        power_aware_misses=len(power_aware),
        belady_energy=idle_energy_of(
            belady, threshold_energy, end_time=end_time
        ),
        power_aware_energy=idle_energy_of(
            power_aware, threshold_energy, end_time=end_time
        ),
    )


# -- Figure 5: the interval CDF ---------------------------------------------------

def interval_cdf_series(
    histogram, probe_points: Sequence[float]
) -> list[tuple[float, float]]:
    """Figure 5: the histogram's CDF approximation at probe points."""
    return [(x, histogram.cdf(x)) for x in probe_points]


# -- Figure 6: replacement-policy comparison ----------------------------------------

def replacement_comparison(
    trace: Sequence[IORequest],
    num_disks: int,
    cache_blocks: int,
    dpms: Sequence[str] = ("practical", "oracle"),
    policies: Sequence[str] = ("infinite", "belady", "opg", "lru", "pa-lru"),
    **run_kwargs,
) -> dict[str, dict[str, SimulationResult]]:
    """Figure 6: every policy under every DPM scheme, one trace."""
    return {
        dpm: {
            policy: run_simulation(
                trace,
                policy,
                num_disks=num_disks,
                cache_blocks=cache_blocks,
                dpm=dpm,
                **run_kwargs,
            )
            for policy in policies
        }
        for dpm in dpms
    }


# -- Figure 7: per-disk breakdowns ---------------------------------------------------

def time_breakdown_comparison(
    lru: SimulationResult,
    pa: SimulationResult,
    disk_ids: Sequence[int],
) -> list[dict[str, object]]:
    """Figure 7: %time per power state and mean inter-arrival, LRU vs PA."""
    rows = []
    for disk_id in disk_ids:
        for label, result in (("LRU", lru), ("PA-LRU", pa)):
            report = result.disks[disk_id]
            rows.append(
                {
                    "disk": disk_id,
                    "policy": label,
                    "breakdown": report.time_breakdown(),
                    "mean_interarrival_s": report.mean_interarrival_s,
                    "requests": report.requests,
                }
            )
    return rows


# -- Figure 8: spin-up cost sensitivity ------------------------------------------------

def spinup_cost_sweep(
    trace: Sequence[IORequest],
    num_disks: int,
    cache_blocks: int,
    spinup_costs_j: Sequence[float],
    base_spec=None,
    **run_kwargs,
) -> list[tuple[float, float]]:
    """Figure 8: PA-LRU's savings over LRU per spin-up energy cost."""
    from repro.sim.config import SimulationConfig
    from repro.power.specs import ULTRASTAR_36Z15

    base = base_spec or ULTRASTAR_36Z15
    points = []
    for cost in spinup_costs_j:
        spec = scale_spinup_cost(base, cost)
        config = SimulationConfig(
            num_disks=num_disks,
            cache_capacity_blocks=cache_blocks,
            dpm="practical",
            spec=spec,
        )
        lru = run_simulation(
            trace, "lru", num_disks=num_disks, cache_blocks=cache_blocks,
            config=config, **run_kwargs,
        )
        pa = run_simulation(
            trace, "pa-lru", num_disks=num_disks, cache_blocks=cache_blocks,
            config=config, **run_kwargs,
        )
        points.append((cost, pa.savings_over(lru)))
    return points


# -- Figure 9: write-policy study -------------------------------------------------------

def write_policy_sweep(
    make_trace: Callable[..., Sequence[IORequest]],
    sweep_values: Sequence[float],
    sweep_param: str,
    num_disks: int,
    cache_blocks: int,
    policies: Sequence[str] = ("write-back", "wbeu", "wtdu"),
    **run_kwargs,
) -> dict[str, list[tuple[float, float]]]:
    """Figure 9: savings of each policy over write-through along a sweep.

    Args:
        make_trace: Called with ``{sweep_param: value}`` per point.
        sweep_values: The x-axis (write ratios, or inter-arrival times).
        sweep_param: The trace-config field being swept.
    """
    curves: dict[str, list[tuple[float, float]]] = {p: [] for p in policies}
    for value in sweep_values:
        trace = make_trace(**{sweep_param: value})
        baseline = run_simulation(
            trace,
            "lru",
            num_disks=num_disks,
            cache_blocks=cache_blocks,
            write_policy="write-through",
            **run_kwargs,
        )
        for policy in policies:
            result = run_simulation(
                trace,
                "lru",
                num_disks=num_disks,
                cache_blocks=cache_blocks,
                write_policy=policy,
                **run_kwargs,
            )
            curves[policy].append((value, result.savings_over(baseline)))
    return curves
