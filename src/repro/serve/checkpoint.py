"""Checkpoint files: persist and restore live sessions.

The on-disk format mirrors the replay-based
:class:`~repro.sim.session.SessionCheckpoint`: a single JSON document

.. code-block:: json

    {
      "format": "repro-serve-checkpoint",
      "version": 1,
      "params": {"policy": "pa-lru", "...": "..."},
      "watermark": 1234.5,
      "served": 10000,
      "requests": [[time, disk, block, nblocks, is_write], ...]
    }

written atomically (temp file + rename, the
:class:`~repro.campaign.store.ResultStore` discipline) so a crash
mid-checkpoint never leaves a truncated file behind. Restore rebuilds
the session from ``params`` and replays ``requests`` — the simulator
is deterministic, so the restored daemon's continuation is
bit-identical to one that never stopped (enforced by the property
test and the serve-smoke CI job).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ServeError
from repro.sim.session import SessionCheckpoint

FORMAT_NAME = "repro-serve-checkpoint"
FORMAT_VERSION = 1

#: Checkpoint files are named ``checkpoint-<served>.json``.
FILE_PREFIX = "checkpoint-"
FILE_SUFFIX = ".json"


def save_checkpoint(checkpoint: SessionCheckpoint, path: str | Path) -> Path:
    """Write one checkpoint atomically; returns the final path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        **checkpoint.to_dict(),
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(document, fh, separators=(",", ":"))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def checkpoint_path(directory: str | Path, served: int) -> Path:
    return Path(directory) / f"{FILE_PREFIX}{served:012d}{FILE_SUFFIX}"


def load_checkpoint(path: str | Path) -> SessionCheckpoint:
    """Read and validate one checkpoint file."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError:
        raise ServeError(f"no checkpoint at {path}") from None
    except json.JSONDecodeError as exc:
        raise ServeError(f"corrupt checkpoint {path}: {exc}") from exc
    if document.get("format") != FORMAT_NAME:
        raise ServeError(
            f"{path} is not a serve checkpoint "
            f"(format={document.get('format')!r})"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ServeError(
            f"{path} has unsupported checkpoint version "
            f"{document.get('version')!r} (expected {FORMAT_VERSION})"
        )
    try:
        return SessionCheckpoint.from_dict(document)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"corrupt checkpoint {path}: {exc}") from exc


def latest_checkpoint(directory: str | Path) -> Path | None:
    """The newest checkpoint file in a directory, or ``None``.

    "Newest" means most requests served — encoded in the zero-padded
    file name, so lexicographic order is request order.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(
        p
        for p in directory.iterdir()
        if p.name.startswith(FILE_PREFIX) and p.name.endswith(FILE_SUFFIX)
    )
    return candidates[-1] if candidates else None
