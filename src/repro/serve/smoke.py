"""End-to-end smoke harness for the serve daemon (the CI gate).

Run as ``python -m repro.serve.smoke``. Three phases, each against a
real daemon subprocess on loopback:

1. **Serve + drain**: boot a ``pa-lru`` daemon with checkpointing,
   push the load-generator workload through the TCP front door, scrape
   ``/metrics``, take a checkpoint over HTTP, push a deterministic
   explicit-time tail, SIGTERM, and assert the graceful-drain
   contract: every acknowledged request is in the ``FINAL`` served
   count — zero lost acknowledged requests.
2. **Restore**: boot a second daemon from the phase-1 checkpoint, push
   the *same* explicit-time tail, drain, and assert its ``FINAL``
   result digest is bit-identical to phase 1's — the restored daemon
   continued exactly where the original would have gone.
3. **Backpressure**: boot a daemon with a tiny ingest queue and an
   artificial feed delay, overdrive it, and assert the overload was
   handled by explicit ``RETRY`` (clients saw rejections, every
   request was eventually acknowledged or explicitly errored, and the
   daemon's RSS stayed bounded — no hidden buffering).

Exit status 0 on success; the first failed assertion aborts with a
message on stderr and status 1.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import subprocess
import sys
import urllib.request
from pathlib import Path

from repro.serve.loadgen import LoadConfig, run_load

#: Explicit-time tails sit far above any wall-derived stamp.
EXPLICIT_BASE = 1_000_000.0

#: RSS ceiling for the backpressure daemon (bytes). Generous — the
#: interpreter plus numpy alone is ~100 MB — but far below what
#: unbounded ingest buffering of a saturating client would reach.
RSS_LIMIT_BYTES = 600 * 1024 * 1024


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


class Daemon:
    """One ``repro serve`` subprocess and its READY/FINAL handshake."""

    def __init__(self, extra_args: list[str]) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        line = self.proc.stdout.readline()
        if not line.startswith("READY "):
            self.proc.kill()
            err = self.proc.stderr.read()
            raise SmokeFailure(f"no READY banner, got {line!r}; stderr: {err}")
        self.ready = json.loads(line[len("READY ") :])
        self.tcp_port = self.ready["tcp_port"]
        self.http_port = self.ready["http_port"]

    def http(self, method: str, path: str, body: bytes = b"") -> str:
        url = f"http://127.0.0.1:{self.http_port}{path}"
        request = urllib.request.Request(
            url, data=body if method == "POST" else None, method=method
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.read().decode()

    def rss_bytes(self) -> int | None:
        status = Path(f"/proc/{self.proc.pid}/status")
        if not status.exists():
            return None
        for line in status.read_text().splitlines():
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
        return None

    def drain(self, timeout_s: float = 120.0) -> dict:
        """SIGTERM, wait for the FINAL line, return its document."""
        self.proc.send_signal(signal.SIGTERM)
        final = None
        for line in self.proc.stdout:
            if line.startswith("FINAL "):
                final = json.loads(line[len("FINAL ") :])
            elif line.startswith("FATAL"):
                raise SmokeFailure(f"daemon died during drain: {line!r}")
        code = self.proc.wait(timeout=timeout_s)
        if final is None:
            err = self.proc.stderr.read()
            raise SmokeFailure(f"no FINAL line (exit {code}); stderr: {err}")
        check(code == 0, f"daemon exited {code} after drain")
        return final

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


def load(port: int, **overrides) -> dict:
    report = asyncio.run(
        run_load(LoadConfig(port=port, **overrides))
    )
    return report.to_dict()


def scrape_metric(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    raise SmokeFailure(f"metric {name} missing from /metrics")


def phase_serve_and_restore(requests: int, checkpoint_dir: Path) -> None:
    session_args = [
        "-p", "pa-lru", "--disks", "4", "--cache-blocks", "512",
        "--time-dilation", "50",
    ]
    daemon = Daemon(
        [*session_args, "--checkpoint-dir", str(checkpoint_dir)]
    )
    try:
        report = load(
            daemon.tcp_port, users=8, requests=requests, workload="zipf",
            num_disks=4, seed=42,
        )
        check(report["errors"] == 0, f"load errors: {report}")
        check(
            report["acked"] == report["sent"] == requests,
            f"main load lost requests: {report}",
        )

        metrics = daemon.http("GET", "/metrics")
        check(
            scrape_metric(metrics, "repro_requests_total") == requests,
            "metrics requests_total != requests served",
        )
        check(
            scrape_metric(metrics, "repro_energy_joules_total") > 0,
            "no streamed energy in /metrics",
        )
        scrape_metric(metrics, "repro_cache_hit_ratio")
        health = json.loads(daemon.http("GET", "/healthz"))
        check(health["status"] == "ok", f"unhealthy: {health}")

        cp_doc = json.loads(daemon.http("POST", "/checkpoint", b""))
        check(
            cp_doc["served"] == requests,
            f"checkpoint at {cp_doc['served']}, expected {requests}",
        )

        tail = load(
            daemon.tcp_port, users=1, requests=500, workload="zipf",
            num_disks=4, seed=7, explicit_time_base=EXPLICIT_BASE,
        )
        check(tail["errors"] == 0, f"explicit tail errors: {tail}")
        final = daemon.drain()
    finally:
        daemon.kill()
    check(
        final["served"] == requests + 500,
        f"FINAL served {final['served']} != acknowledged {requests + 500} "
        "(lost acknowledged requests)",
    )
    print(f"phase 1 ok: served={final['served']} digest={final['digest']}")

    restored = Daemon(["--restore", cp_doc["path"]])
    try:
        check(
            restored.ready["replayed"] == requests,
            f"restore replayed {restored.ready['replayed']}",
        )
        tail2 = load(
            restored.tcp_port, users=1, requests=500, workload="zipf",
            num_disks=4, seed=7, explicit_time_base=EXPLICIT_BASE,
        )
        check(tail2["errors"] == 0, f"restored tail errors: {tail2}")
        final2 = restored.drain()
    finally:
        restored.kill()
    check(
        final2["digest"] == final["digest"],
        "restored daemon diverged: "
        f"{final2['digest']} != {final['digest']}",
    )
    print(f"phase 2 ok: restored digest matches ({final2['digest'][:16]}…)")


def phase_backpressure() -> None:
    daemon = Daemon(
        [
            "-p", "lru", "--disks", "2", "--cache-blocks", "128",
            "--queue-capacity", "2", "--batch-max", "2",
            "--feed-delay", "0.005",
        ]
    )
    try:
        report = load(
            daemon.tcp_port, users=8, requests=400, workload="zipf",
            num_disks=2, seed=11,
        )
        rss = daemon.rss_bytes()
        final = daemon.drain()
    finally:
        daemon.kill()
    check(report["retried"] > 0, f"no backpressure observed: {report}")
    check(report["errors"] == 0, f"backpressure load errors: {report}")
    check(
        report["acked"] == report["sent"],
        f"requests neither acked nor errored: {report}",
    )
    check(
        final["rejected"] > 0,
        f"daemon counted no rejections: {final}",
    )
    check(
        final["served"] == report["acked"],
        f"FINAL served {final['served']} != acked {report['acked']} "
        "(lost acknowledged requests)",
    )
    if rss is not None:
        check(
            rss < RSS_LIMIT_BYTES,
            f"daemon RSS {rss / 2**20:.0f} MiB exceeds the bound "
            f"{RSS_LIMIT_BYTES / 2**20:.0f} MiB",
        )
    print(
        f"phase 3 ok: retried={report['retried']} "
        f"rejected={final['rejected']} served={final['served']}"
        + (f" rss={rss / 2**20:.0f}MiB" if rss is not None else "")
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests", type=int, default=10_000,
        help="main-phase load size (default 10000)",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="checkpoint scratch directory (default: a temp dir)",
    )
    args = parser.parse_args(argv)
    import tempfile

    try:
        if args.workdir:
            workdir = Path(args.workdir)
            workdir.mkdir(parents=True, exist_ok=True)
            phase_serve_and_restore(args.requests, workdir / "checkpoints")
        else:
            with tempfile.TemporaryDirectory() as tmp:
                phase_serve_and_restore(
                    args.requests, Path(tmp) / "checkpoints"
                )
        phase_backpressure()
    except SmokeFailure as exc:
        print(f"serve-smoke FAILED: {exc}", file=sys.stderr)
        return 1
    print("serve-smoke passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
