"""The line-oriented ingest protocol.

One request per line, ASCII, newline-terminated — trivially producible
from netcat, a shell loop, or the bundled load generator:

.. code-block:: text

    REQ <id> <disk> <block> [<nblocks>] [R|W] [t=<sim_time>]
    PING

``id`` is an opaque client token echoed back in the response; the
optional ``t=`` field pins an explicit simulated arrival time (it must
not precede the daemon's stamp watermark — used by deterministic
drivers like the smoke harness), otherwise the daemon stamps the
request from its lockstep clock. Responses:

.. code-block:: text

    OK <id> <latency_s> <sim_time>     # served; client-visible latency
    RETRY <id> <after_s>               # backpressure: try again later
    ERR <id> <message...>              # malformed request
    PONG                               # answer to PING

The same grammar rides the HTTP ingest endpoint: a ``POST /ingest``
body is parsed line by line and the response body carries the matching
``OK``/``RETRY`` lines in request order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServeError
from repro.traces.record import IORequest

#: Verbs a client may send.
VERB_REQ = "REQ"
VERB_PING = "PING"

#: Verbs the daemon answers with.
VERB_OK = "OK"
VERB_RETRY = "RETRY"
VERB_ERR = "ERR"
VERB_PONG = "PONG"


@dataclass(frozen=True, slots=True)
class IngestLine:
    """One parsed ``REQ`` line (time still unstamped when ``None``)."""

    req_id: str
    disk: int
    block: int
    nblocks: int = 1
    is_write: bool = False
    time: float | None = None

    def to_request(self, stamp: float) -> IORequest:
        """Materialize at the stamped simulated arrival time."""
        return IORequest(
            time=self.time if self.time is not None else stamp,
            disk=self.disk,
            block=self.block,
            nblocks=self.nblocks,
            is_write=self.is_write,
        )


def parse_request_line(line: str) -> IngestLine:
    """Parse one ``REQ`` line; raises :class:`ServeError` on bad input."""
    parts = line.split()
    if not parts or parts[0] != VERB_REQ:
        raise ServeError(f"expected a {VERB_REQ} line, got {line!r}")
    if len(parts) < 4:
        raise ServeError(
            f"{VERB_REQ} needs at least <id> <disk> <block>, got {line!r}"
        )
    req_id = parts[1]
    rest = parts[2:]
    explicit_time: float | None = None
    if rest and rest[-1].startswith("t="):
        try:
            explicit_time = float(rest[-1][2:])
        except ValueError as exc:
            raise ServeError(f"bad explicit time in {line!r}") from exc
        if explicit_time < 0:
            raise ServeError(f"explicit time must be >= 0 in {line!r}")
        rest = rest[:-1]
    if len(rest) < 2 or len(rest) > 4:
        raise ServeError(f"malformed {VERB_REQ} line {line!r}")
    try:
        disk = int(rest[0])
        block = int(rest[1])
        nblocks = int(rest[2]) if len(rest) >= 3 else 1
    except ValueError as exc:
        raise ServeError(f"non-integer field in {line!r}") from exc
    is_write = False
    if len(rest) == 4:
        flag = rest[3].upper()
        if flag not in ("R", "W"):
            raise ServeError(f"read/write flag must be R or W in {line!r}")
        is_write = flag == "W"
    if disk < 0 or block < 0 or nblocks < 1:
        raise ServeError(f"out-of-range field in {line!r}")
    return IngestLine(
        req_id=req_id,
        disk=disk,
        block=block,
        nblocks=nblocks,
        is_write=is_write,
        time=explicit_time,
    )


def format_request(
    req_id: str,
    disk: int,
    block: int,
    nblocks: int = 1,
    is_write: bool = False,
    time: float | None = None,
) -> str:
    """Render a ``REQ`` line (client side)."""
    line = (
        f"{VERB_REQ} {req_id} {disk} {block} {nblocks} "
        f"{'W' if is_write else 'R'}"
    )
    if time is not None:
        line += f" t={time!r}"
    return line


def format_ok(req_id: str, latency_s: float, sim_time: float) -> str:
    return f"{VERB_OK} {req_id} {latency_s!r} {sim_time!r}"


def format_retry(req_id: str, after_s: float) -> str:
    return f"{VERB_RETRY} {req_id} {after_s:.3f}"


def format_err(req_id: str, message: str) -> str:
    return f"{VERB_ERR} {req_id} {message}"


@dataclass(frozen=True, slots=True)
class Response:
    """One parsed daemon response line (client side)."""

    verb: str
    req_id: str
    #: ``OK``: latency; ``RETRY``: the advised backoff; else 0.0.
    value: float = 0.0
    #: ``OK``: the stamped simulated service time; else 0.0.
    sim_time: float = 0.0
    message: str = ""


def parse_response_line(line: str) -> Response:
    """Parse a daemon response; raises :class:`ServeError` if unknown."""
    parts = line.split(None, 3)
    if not parts:
        raise ServeError("empty response line")
    verb = parts[0]
    if verb == VERB_PONG:
        return Response(verb=verb, req_id="")
    if verb == VERB_OK and len(parts) == 4:
        return Response(
            verb=verb,
            req_id=parts[1],
            value=float(parts[2]),
            sim_time=float(parts[3]),
        )
    if verb == VERB_RETRY and len(parts) == 3:
        return Response(verb=verb, req_id=parts[1], value=float(parts[2]))
    if verb == VERB_ERR and len(parts) >= 2:
        return Response(
            verb=verb,
            req_id=parts[1],
            message=parts[3] if len(parts) > 3 else "",
        )
    raise ServeError(f"unparseable response line {line!r}")
