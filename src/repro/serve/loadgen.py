"""Asyncio load generator for the serve daemon.

Replays synthetic users against a running daemon: the request stream
comes from the repo's own trace generators (the paper's synthetic
Zipf mix or the OLTP-like generator), is partitioned round-robin
across ``users`` concurrent TCP connections, and each user sends,
awaits the acknowledgement, honours ``RETRY`` backpressure, and
records client-visible latencies into streaming quantile estimators.

Two stamping modes:

- **wall mode** (default): generated arrival times are discarded and
  the daemon stamps each request from its lockstep clock — the normal
  live-traffic shape.
- **explicit-time mode** (``explicit_time_base`` set): each request
  pins ``t=`` from the generated trace, offset by the base. The
  daemon's simulated timeline is then fully determined by the request
  stream, which is what makes the smoke harness's digest comparisons
  possible. Requires ``users=1`` — explicit times from concurrent
  connections would interleave out of order.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError, ServeError
from repro.observe.sinks import P2Quantile
from repro.serve.protocol import (
    VERB_OK,
    VERB_RETRY,
    format_request,
    parse_response_line,
)
from repro.traces.oltp import OLTPTraceConfig, generate_oltp_trace
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    generate_synthetic_trace,
)

WORKLOADS = ("zipf", "oltp")

#: Cap a single advised backoff so a draining daemon cannot stall the
#: generator for seconds per request.
MAX_CLIENT_BACKOFF_S = 0.5

#: Give up on a request after this many RETRYs (counted as an error —
#: the request was never acknowledged, so nothing is lost).
MAX_RETRIES_PER_REQUEST = 200


@dataclass(slots=True)
class LoadConfig:
    """Generator knobs (CLI flags map one-to-one)."""

    host: str = "127.0.0.1"
    port: int = 0
    users: int = 8
    requests: int = 10_000
    workload: str = "zipf"
    num_disks: int = 4
    seed: int = 42
    #: Pause between a user's consecutive requests (wall seconds).
    pace_s: float = 0.0
    #: When set, pin explicit ``t=`` stamps offset by this base.
    explicit_time_base: float | None = None

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ConfigurationError("users must be >= 1")
        if self.requests < 1:
            raise ConfigurationError("requests must be >= 1")
        if self.workload not in WORKLOADS:
            raise ConfigurationError(
                f"workload must be one of {WORKLOADS}, got {self.workload!r}"
            )
        if self.explicit_time_base is not None and self.users != 1:
            raise ConfigurationError(
                "explicit-time mode needs users=1 (concurrent connections "
                "would interleave explicit stamps out of order)"
            )


@dataclass(slots=True)
class LoadReport:
    """What happened, from the clients' point of view."""

    sent: int = 0
    acked: int = 0
    retried: int = 0
    errors: int = 0
    elapsed_wall_s: float = 0.0
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    p99_latency_s: float = 0.0

    @property
    def rps(self) -> float:
        if self.elapsed_wall_s <= 0:
            return 0.0
        return self.acked / self.elapsed_wall_s

    def to_dict(self) -> dict:
        return {
            "sent": self.sent,
            "acked": self.acked,
            "retried": self.retried,
            "errors": self.errors,
            "elapsed_wall_s": self.elapsed_wall_s,
            "rps": self.rps,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
        }


def generate_workload(config: LoadConfig) -> list[tuple]:
    """Materialize the request stream as protocol field tuples.

    Returns ``(req_id, disk, block, nblocks, is_write, time)`` tuples
    in trace order; ``time`` is ``None`` in wall mode.
    """
    if config.workload == "zipf":
        trace = generate_synthetic_trace(
            SyntheticTraceConfig(
                num_requests=config.requests,
                num_disks=config.num_disks,
                seed=config.seed,
            )
        )
    else:
        oltp = OLTPTraceConfig(
            num_disks=max(config.num_disks, 2),
            num_hot_disks=max(config.num_disks // 2, 1),
            duration_s=max(config.requests * 0.099 * 1.5, 60.0),
            seed=config.seed,
        )
        trace = generate_oltp_trace(oltp)
        if len(trace) < config.requests:
            raise ConfigurationError(
                f"OLTP generator produced {len(trace)} requests, "
                f"fewer than the requested {config.requests}"
            )
        trace = trace[: config.requests]
    base = config.explicit_time_base
    items = []
    for i, req in enumerate(trace):
        stamp = None if base is None else base + req.time
        items.append(
            (f"r{i}", req.disk, req.block, req.nblocks, req.is_write, stamp)
        )
    return items


async def _run_user(
    config: LoadConfig,
    items: list[tuple],
    report: LoadReport,
    quantiles: list[P2Quantile],
) -> None:
    reader, writer = await asyncio.open_connection(config.host, config.port)
    try:
        for req_id, disk, block, nblocks, is_write, stamp in items:
            line = format_request(
                req_id, disk, block, nblocks, is_write, stamp
            )
            payload = line.encode("ascii") + b"\n"
            report.sent += 1
            retries = 0
            while True:
                writer.write(payload)
                await writer.drain()
                raw = await reader.readline()
                if not raw:
                    raise ServeError("daemon closed the connection")
                response = parse_response_line(raw.decode("ascii").strip())
                if response.verb == VERB_OK:
                    report.acked += 1
                    for q in quantiles:
                        q.add(response.value)
                    break
                if response.verb == VERB_RETRY:
                    report.retried += 1
                    retries += 1
                    if retries > MAX_RETRIES_PER_REQUEST:
                        report.errors += 1
                        break
                    await asyncio.sleep(
                        min(response.value, MAX_CLIENT_BACKOFF_S)
                    )
                    continue
                report.errors += 1
                break
            if config.pace_s > 0:
                await asyncio.sleep(config.pace_s)
    finally:
        writer.close()


async def run_load(config: LoadConfig) -> LoadReport:
    """Drive the full workload; returns the aggregated report."""
    items = generate_workload(config)
    report = LoadReport()
    quantiles = [P2Quantile(q) for q in (0.5, 0.95, 0.99)]
    started = time.monotonic()
    if config.users == 1:
        await _run_user(config, items, report, quantiles)
    else:
        shards = [items[u :: config.users] for u in range(config.users)]
        await asyncio.gather(
            *(
                _run_user(config, shard, report, quantiles)
                for shard in shards
                if shard
            )
        )
    report.elapsed_wall_s = time.monotonic() - started
    report.p50_latency_s = quantiles[0].value()
    report.p95_latency_s = quantiles[1].value()
    report.p99_latency_s = quantiles[2].value()
    return report
