"""The online service daemon.

A single-threaded asyncio server that drives one
:class:`~repro.sim.session.SimulationSession` in simulated-time
lockstep with wall time:

- a line-oriented TCP listener speaking the :mod:`repro.serve.protocol`
  grammar,
- a minimal HTTP listener (``GET /metrics``, ``GET /healthz``,
  ``POST /ingest``, ``POST /checkpoint``) — hand-rolled request
  parsing, one connection per exchange, nothing beyond the stdlib,
- a feed worker draining the bounded :class:`IngestQueue` into the
  session in stamped batches,
- an idle ticker that raises the session watermark while the queue is
  empty (so disks keep accruing idle time and DPM timeouts fire even
  with no traffic),
- a graceful drain on SIGTERM/SIGINT: new requests are rejected with
  ``RETRY``, the queue is flushed, every accepted request is
  acknowledged, the session is finalized at the deterministic batch
  horizon, and a ``FINAL`` JSON line carries the result digest.

Everything runs on one event loop; the session is only mutated by
synchronous code between awaits, so request boundaries are atomic and
a checkpoint taken from any handler sees a consistent state.

Concurrency note: ``OK`` responses are written straight to the client
transport. A client that stops reading can make its kernel socket
buffer (and asyncio's transport buffer) grow, but the *simulation*
side stays bounded — admission is gated by the ingest queue, which is
the resource the backpressure contract protects.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import signal
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ServeError
from repro.observe.bus import EventBus
from repro.observe.events import (
    CheckpointTaken,
    DrainStarted,
    IngestAccepted,
    IngestRejected,
)
from repro.observe.sinks import MetricsSink
from repro.serve.checkpoint import (
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.clock import LockstepClock
from repro.serve.ingest import IngestQueue
from repro.serve.metrics import render_metrics
from repro.serve.protocol import (
    IngestLine,
    format_err,
    format_ok,
    format_retry,
    parse_request_line,
)
from repro.sim.runner import build_session, restore_session

#: Advised backoff while draining (the daemon is going away; clients
#: should fail over rather than hammer the retry loop).
DRAIN_RETRY_AFTER_S = 1.0


@dataclass(slots=True)
class ServeConfig:
    """Daemon knobs (CLI flags map one-to-one)."""

    host: str = "127.0.0.1"
    tcp_port: int = 0
    http_port: int = 0
    time_dilation: float = 1.0
    queue_capacity: int = 4096
    batch_max: int = 256
    tick_interval_s: float = 0.05
    #: Artificial pause after each fed batch — a test-only throttle the
    #: smoke harness uses to provoke backpressure deterministically.
    feed_delay_s: float = 0.0
    checkpoint_dir: str | None = None
    #: Take a checkpoint every N served requests (0 = only on demand).
    checkpoint_every: int = 0
    #: Restore from this checkpoint file before accepting traffic.
    restore_path: str | None = None
    #: Session parameters forwarded to ``build_session`` (ignored when
    #: restoring — the checkpoint carries its own rebuild recipe).
    session_params: dict = field(default_factory=dict)


class ServeDaemon:
    """One live simulation behind a TCP + HTTP front door."""

    def __init__(self, config: ServeConfig, *, out=None) -> None:
        self.config = config
        self._out = out if out is not None else sys.stdout
        self.bus = EventBus()
        self.metrics = MetricsSink()
        self.bus.attach(self.metrics)
        self.replayed = 0
        if config.restore_path is not None:
            cp = load_checkpoint(config.restore_path)
            self.session = restore_session(cp, probe=self.bus)
            self.replayed = cp.served
            base = max(cp.watermark, self.session.now)
        else:
            self.session = build_session(
                probe=self.bus,
                record_requests=True,
                **config.session_params,
            )
            base = 0.0
        self.clock = LockstepClock(config.time_dilation, base=base)
        self.queue = IngestQueue(config.queue_capacity)
        self._draining = False
        self._drain_requested = asyncio.Event()
        self._done = asyncio.Event()
        self._wall_start = time.monotonic()
        self._last_checkpoint_served = self.session.served
        self._tcp_server: asyncio.base_events.Server | None = None
        self._http_server: asyncio.base_events.Server | None = None
        self._feed_task: asyncio.Task | None = None
        self._tick_task: asyncio.Task | None = None
        self._drain_task: asyncio.Task | None = None
        self.result = None
        self.exit_code = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind both listeners, start the workers, print ``READY``."""
        cfg = self.config
        self._tcp_server = await asyncio.start_server(
            self._handle_tcp, cfg.host, cfg.tcp_port
        )
        self._http_server = await asyncio.start_server(
            self._handle_http, cfg.host, cfg.http_port
        )
        self._feed_task = asyncio.ensure_future(self._feed_worker())
        self._feed_task.add_done_callback(self._on_feed_done)
        self._tick_task = asyncio.ensure_future(self._ticker())
        banner = {
            "tcp_port": self._tcp_server.sockets[0].getsockname()[1],
            "http_port": self._http_server.sockets[0].getsockname()[1],
            "label": self.session.simulator.label,
            "replayed": self.replayed,
            "sim_time": self.session.now,
        }
        self._print(f"READY {json.dumps(banner, sort_keys=True)}")

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.request_drain)

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent; signal-handler safe)."""
        if self._draining:
            return
        self._draining = True
        self.bus(DrainStarted(time=self.clock.now(), pending=len(self.queue)))
        self._drain_requested.set()

    async def wait_closed(self) -> None:
        """Block until the drain has fully completed."""
        await self._done.wait()

    @property
    def tcp_port(self) -> int:
        return self._tcp_server.sockets[0].getsockname()[1]

    @property
    def http_port(self) -> int:
        return self._http_server.sockets[0].getsockname()[1]

    # -- ingest (shared by TCP and HTTP) ----------------------------------

    def ingest(self, line: str):
        """Admit one request line.

        Returns ``(response_text, None)`` for an immediate answer
        (``RETRY``/``ERR``/``PONG``) or ``(None, future)`` for an
        accepted request — the future resolves to the ``OK`` line once
        the feed worker has served it.
        """
        stripped = line.strip()
        if not stripped:
            return None, None
        if stripped.upper() == "PING":
            return "PONG", None
        try:
            parsed = parse_request_line(stripped)
        except ServeError as exc:
            req_id = stripped.split()[1] if len(stripped.split()) > 1 else "-"
            return format_err(req_id, str(exc)), None
        if self._draining:
            return format_retry(parsed.req_id, DRAIN_RETRY_AFTER_S), None
        stamp = self._stamp(parsed)
        if stamp is None:
            return (
                format_err(
                    parsed.req_id,
                    f"explicit time {parsed.time} is behind the stamp "
                    f"watermark {max(self.clock.floor, self.session.now)}",
                ),
                None,
            )
        request = parsed.to_request(stamp)
        future = asyncio.get_running_loop().create_future()
        accepted, after_s = self.queue.offer((request, parsed.req_id, future))
        if not accepted:
            self.bus(
                IngestRejected(
                    time=self.clock.now(),
                    retry_after_s=after_s,
                    queue_depth=len(self.queue),
                )
            )
            return format_retry(parsed.req_id, after_s), None
        self.bus(
            IngestAccepted(
                time=request.time,
                disk=request.disk,
                queue_depth=len(self.queue),
            )
        )
        return None, future

    def _stamp(self, parsed: IngestLine) -> float | None:
        """Stamp an arrival; ``None`` if an explicit time runs backwards."""
        if parsed.time is None:
            return self.clock.stamp(floor=self.session.now)
        floor = max(self.clock.floor, self.session.now)
        if parsed.time < floor:
            return None
        self.clock.ratchet(parsed.time)
        return parsed.time

    # -- workers ----------------------------------------------------------

    async def _feed_worker(self) -> None:
        while True:
            if not len(self.queue):
                if self._draining:
                    break
                await self._wait_for_work()
                continue
            batch = self.queue.take_batch(self.config.batch_max)
            if not batch:
                continue
            t0 = time.monotonic()
            requests = [item[0] for item in batch]
            latencies = self.session.feed(requests)
            self.queue.note_drain(len(batch), time.monotonic() - t0)
            for (request, req_id, future), latency in zip(batch, latencies):
                if not future.done():
                    future.set_result(
                        format_ok(req_id, latency, request.time)
                    )
            # Deliberate synchronous write: the checkpoint must be
            # consistent with the session state *at this batch border*,
            # so the loop holds still while it lands (single-threaded
            # lockstep design; see DESIGN on serve-mode determinism).
            self._maybe_periodic_checkpoint()  # repro: ignore[asyncsafe]
            if self.config.feed_delay_s > 0:
                await asyncio.sleep(self.config.feed_delay_s)
            else:
                # Yield so connection handlers can enqueue/ack between
                # batches even under a saturating ingest stream.
                await asyncio.sleep(0)

    async def _wait_for_work(self) -> None:
        waiters = [
            asyncio.ensure_future(self.queue.wait_for_items()),
            asyncio.ensure_future(self._drain_requested.wait()),
        ]
        try:
            await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for w in waiters:
                w.cancel()

    def _on_feed_done(self, task: asyncio.Task) -> None:
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            if self._draining:
                self._drain_task = asyncio.ensure_future(self._finish_drain())
            return
        # A feed failure is fatal: the engine may be inconsistent.
        self._print(f"FATAL {type(exc).__name__}: {exc}")
        self.exit_code = 1
        self._done.set()

    async def _ticker(self) -> None:
        while not self._draining:
            await asyncio.sleep(self.config.tick_interval_s)
            if self._draining or len(self.queue):
                # Advancing past queued stamps would make their feed
                # run backwards in simulated time; only idle-tick when
                # nothing is waiting.
                continue
            now = self.clock.now()
            if now > self.session.now and not self.session.finalized:
                self.session.advance_to(now)

    async def _finish_drain(self) -> None:
        if self._tick_task is not None:
            self._tick_task.cancel()
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                server.close()
        if self.config.checkpoint_dir and self.session.served:
            # Deliberate synchronous write: the daemon is draining and
            # no client work races this final checkpoint.
            self._take_checkpoint()  # repro: ignore[asyncsafe]
        # Deterministic horizon: the batch path's end time, independent
        # of how long the daemon idled on wall time — a restored daemon
        # fed the same requests finalizes to a bit-identical result.
        end_time = None
        if self.session.served:
            tail = self.session.simulator.config.trace_tail_s
            end_time = self.session.last_request_time + tail
        self.result = self.session.finalize(end_time)
        final = {
            "served": self.session.served,
            "replayed": self.replayed,
            "accepted": self.queue.accepted_total,
            "rejected": self.queue.rejected_total,
            "label": self.result.label,
            "digest": result_digest(self.result),
            "total_energy_j": self.result.total_energy_j,
        }
        self._print(f"FINAL {json.dumps(final, sort_keys=True)}")
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                await server.wait_closed()
        self._done.set()

    # -- checkpointing ----------------------------------------------------

    def _take_checkpoint(self) -> Path:
        cp = self.session.checkpoint()
        path = checkpoint_path(self.config.checkpoint_dir, cp.served)
        save_checkpoint(cp, path)
        self._last_checkpoint_served = cp.served
        self.bus(
            CheckpointTaken(
                time=self.clock.now(), served=cp.served, path=str(path)
            )
        )
        return path

    def _maybe_periodic_checkpoint(self) -> None:
        every = self.config.checkpoint_every
        if not every or not self.config.checkpoint_dir:
            return
        if self.session.served - self._last_checkpoint_served >= every:
            self._take_checkpoint()

    # -- TCP front door ---------------------------------------------------

    async def _handle_tcp(self, reader, writer) -> None:
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                try:
                    line = raw.decode("ascii")
                except UnicodeDecodeError:
                    writer.write(b"ERR - non-ascii line\n")
                    continue
                text, future = self.ingest(line)
                if text is not None:
                    writer.write(text.encode("ascii") + b"\n")
                elif future is not None:
                    future.add_done_callback(
                        lambda f, w=writer: self._write_ack(w, f)
                    )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    @staticmethod
    def _write_ack(writer, future: asyncio.Future) -> None:
        if future.cancelled():
            return
        try:
            writer.write(future.result().encode("ascii") + b"\n")
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass

    # -- HTTP front door --------------------------------------------------

    async def _handle_http(self, reader, writer) -> None:
        try:
            status, headers, body = await self._http_route(reader)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            writer.close()
            return
        except ServeError as exc:
            status, headers, body = 400, {}, f"{exc}\n"
        payload = body.encode()
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}"]
        headers.setdefault("Content-Type", "text/plain; charset=utf-8")
        headers["Content-Length"] = str(len(payload))
        headers["Connection"] = "close"
        for key, value in headers.items():
            head.append(f"{key}: {value}")
        writer.write("\r\n".join(head).encode() + b"\r\n\r\n" + payload)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        writer.close()

    async def _http_route(self, reader) -> tuple[int, dict, str]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            raise ServeError(f"malformed request line {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = (await reader.readline()).decode("latin-1").strip()
            if not header:
                break
            if header.lower().startswith("content-length:"):
                try:
                    content_length = int(header.split(":", 1)[1])
                except ValueError as exc:
                    raise ServeError("bad Content-Length") from exc
        body = ""
        if content_length:
            body = (await reader.readexactly(content_length)).decode()
        if method == "GET" and target == "/metrics":
            return 200, {}, render_metrics(self.metrics, self._gauges())
        if method == "GET" and target == "/healthz":
            health = {
                "status": "draining" if self._draining else "ok",
                "served": self.session.served,
                "replayed": self.replayed,
                "sim_time": self.session.now,
                "queue_depth": len(self.queue),
            }
            return (
                503 if self._draining else 200,
                {"Content-Type": "application/json"},
                json.dumps(health, sort_keys=True) + "\n",
            )
        if method == "POST" and target == "/ingest":
            return await self._http_ingest(body)
        if method == "POST" and target == "/checkpoint":
            if not self.config.checkpoint_dir:
                return 409, {}, "no --checkpoint-dir configured\n"
            if self._draining:
                return 503, {}, "draining\n"
            # Deliberate synchronous write: POST /checkpoint promises a
            # checkpoint consistent with everything acked before the
            # request; the event loop holds still while it lands.
            path = self._take_checkpoint()  # repro: ignore[asyncsafe]
            doc = {"path": str(path), "served": self.session.served}
            return (
                200,
                {"Content-Type": "application/json"},
                json.dumps(doc, sort_keys=True) + "\n",
            )
        return 404, {}, f"no route {method} {target}\n"

    async def _http_ingest(self, body: str) -> tuple[int, dict, str]:
        futures = []
        for line in body.splitlines():
            if not line.strip():
                continue
            text, future = self.ingest(line)
            if text is not None:
                done: asyncio.Future = (
                    asyncio.get_running_loop().create_future()
                )
                done.set_result(text)
                futures.append(done)
            elif future is not None:
                futures.append(future)
        if futures:
            await asyncio.wait(futures)
        lines = [f.result() for f in futures]
        return 200, {}, "\n".join(lines) + ("\n" if lines else "")

    def _gauges(self) -> dict[str, float]:
        return {
            "sim_time_seconds": self.session.now,
            "served_requests": float(self.session.served),
            "replayed_requests": float(self.replayed),
            "queue_depth": float(len(self.queue)),
            "queue_capacity": float(self.queue.capacity),
            "draining": 1.0 if self._draining else 0.0,
            "time_dilation": self.config.time_dilation,
            "uptime_wall_seconds": time.monotonic() - self._wall_start,
        }

    def _print(self, line: str) -> None:
        print(line, file=self._out, flush=True)


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    503: "Service Unavailable",
}


def result_digest(result) -> str:
    """A canonical sha256 over the full result document.

    Two runs are "bit-identical" exactly when their digests match —
    the equality the restore property test and the serve-smoke job
    assert.
    """
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


async def serve_until_drained(config: ServeConfig, *, out=None) -> ServeDaemon:
    """Run one daemon lifecycle: start, serve, drain, return."""
    # Checkpoint restore in __init__ is a deliberate synchronous read:
    # nothing is served until the state is fully loaded.
    daemon = ServeDaemon(config, out=out)  # repro: ignore[asyncsafe]
    await daemon.start()
    daemon.install_signal_handlers()
    await daemon.wait_closed()
    return daemon
