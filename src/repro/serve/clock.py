"""The lockstep simulation clock.

The daemon advances the engine in *simulated-time lockstep with wall
time*: a request arriving ``w`` wall-seconds after the daemon started
is stamped ``base + w * time_dilation`` simulated seconds, where
``time_dilation`` scales how fast simulated time runs (10.0 = a
10-minute OLTP epoch elapses in one wall minute; handy because the
paper's DPM thresholds are tens of simulated seconds).

Wall time is read from ``time.monotonic`` (never the wall *clock* —
simulation state must not depend on the calendar; the determinism
lint enforces this), and stamps are monotonically non-decreasing even
if the platform monotonic clock misbehaves: the stamp watermark is a
floor. Restored daemons resume from the checkpoint watermark, so
simulated time never runs backwards across a restore either.
"""

from __future__ import annotations

import time

from repro.errors import ConfigurationError


class LockstepClock:
    """Maps wall time onto the simulated timeline.

    Args:
        time_dilation: Simulated seconds per wall second (> 0).
        base: Simulated time at which this clock starts (a restored
            daemon passes the checkpoint watermark).
        now_fn: Wall-time source; injectable for tests. Defaults to
            ``time.monotonic``.
    """

    __slots__ = ("time_dilation", "_base", "_now_fn", "_wall_start", "_floor")

    def __init__(
        self,
        time_dilation: float = 1.0,
        *,
        base: float = 0.0,
        now_fn=time.monotonic,
    ) -> None:
        if time_dilation <= 0:
            raise ConfigurationError(
                f"time_dilation must be > 0, got {time_dilation}"
            )
        if base < 0:
            raise ConfigurationError(f"base must be >= 0, got {base}")
        self.time_dilation = time_dilation
        self._base = base
        self._now_fn = now_fn
        self._wall_start = now_fn()
        self._floor = base

    def now(self) -> float:
        """Current simulated time (never decreasing)."""
        sim = (
            self._base
            + (self._now_fn() - self._wall_start) * self.time_dilation
        )
        if sim > self._floor:
            self._floor = sim
        return self._floor

    def stamp(self, floor: float = 0.0) -> float:
        """A simulated arrival stamp ``>= floor`` and ``>= `` all
        previous stamps — the non-decreasing trace-order guarantee the
        engine requires."""
        if floor > self._floor:
            self._floor = floor
        return self.now()

    def ratchet(self, floor: float) -> None:
        """Raise the monotone floor (e.g. an explicit-time ingest)."""
        if floor > self._floor:
            self._floor = floor

    @property
    def floor(self) -> float:
        """The monotone watermark (last stamp or better)."""
        return self._floor
