"""Text rendering for the ``/metrics`` endpoint.

A Prometheus-style exposition built from the
:meth:`~repro.observe.sinks.MetricsSink.snapshot` counters (O(1) —
no waiting for finalize) plus daemon gauges (queue depth, simulated
time, served count). Per-disk power-state dwell comes from the sink's
per-disk maps; those lines are inherently O(disks), which is the
exposition format's cost, not the snapshot's.
"""

from __future__ import annotations

from repro.observe.sinks import MetricsSink

#: (snapshot key, metric name, help text) — the scalar series.
_SCALARS = (
    ("requests", "repro_requests_total", "requests served"),
    ("hits", "repro_cache_hits_total", "cache hits"),
    ("misses", "repro_cache_misses_total", "cache misses"),
    ("hit_ratio", "repro_cache_hit_ratio", "hits / accesses"),
    ("evictions", "repro_cache_evictions_total", "cache evictions"),
    ("dirty_flushes", "repro_dirty_flushes_total", "dirty writebacks"),
    ("spinups", "repro_disk_spinups_total", "disk spin-ups"),
    ("spindowns", "repro_disk_spindowns_total", "disk spin-downs"),
    ("epochs", "repro_classifier_epochs_total", "PA epochs rolled"),
    ("energy_so_far_j", "repro_energy_joules_total",
     "streamed disk energy so far"),
    ("mean_latency_s", "repro_request_latency_mean_seconds",
     "mean request latency"),
    ("ingest_accepted", "repro_ingest_accepted_total",
     "live requests accepted into the queue"),
    ("ingest_rejected", "repro_ingest_rejected_total",
     "live requests rejected with RETRY (backpressure)"),
    ("ingest_queue_depth", "repro_ingest_queue_depth",
     "ingest queue depth at last ingest event"),
)

_QUANTILE_KEYS = (
    ("p50_latency_s", "0.5"),
    ("p95_latency_s", "0.95"),
    ("p99_latency_s", "0.99"),
)


def render_metrics(
    sink: MetricsSink,
    gauges: dict[str, float] | None = None,
) -> str:
    """Render the live metrics text page.

    ``gauges`` are extra daemon-level series (``repro_`` prefix added),
    e.g. simulated time, wall uptime, queue depth right now.
    """
    snapshot = sink.snapshot()
    lines: list[str] = []
    for key, name, help_text in _SCALARS:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"{name} {snapshot[key]!r}")
    lines.append(
        "# HELP repro_request_latency_seconds streaming latency quantiles"
    )
    for key, quantile in _QUANTILE_KEYS:
        lines.append(
            "repro_request_latency_seconds"
            f'{{quantile="{quantile}"}} {snapshot[key]!r}'
        )
    lines.append(
        "# HELP repro_disk_dwell_seconds per-disk power-state dwell "
        "streamed so far"
    )
    for disk in sorted(sink.disk_dwell_s):
        lines.append(
            f'repro_disk_dwell_seconds{{disk="{disk}"}} '
            f"{sink.disk_dwell_s[disk]!r}"
        )
    lines.append("# HELP repro_disk_energy_joules per-disk streamed energy")
    for disk in sorted(sink.disk_energy_j):
        lines.append(
            f'repro_disk_energy_joules{{disk="{disk}"}} '
            f"{sink.disk_energy_j[disk]!r}"
        )
    if gauges:
        for key in sorted(gauges):
            lines.append(f"repro_{key} {gauges[key]!r}")
    return "\n".join(lines) + "\n"
