"""Online service mode: live request ingest over the batch engine.

The ``repro serve`` daemon wraps one incremental
:class:`~repro.sim.session.SimulationSession` with a TCP line protocol
and a minimal HTTP surface, advancing simulated time in lockstep with
wall time. Modules:

- :mod:`repro.serve.protocol` — the ``REQ``/``OK``/``RETRY`` line grammar
- :mod:`repro.serve.clock` — the wall-to-simulated lockstep clock
- :mod:`repro.serve.ingest` — bounded queue + explicit backpressure
- :mod:`repro.serve.daemon` — the asyncio server and drain lifecycle
- :mod:`repro.serve.metrics` — ``/metrics`` text exposition
- :mod:`repro.serve.checkpoint` — atomic checkpoint files (replay-based)
- :mod:`repro.serve.loadgen` — synthetic asyncio users
- :mod:`repro.serve.smoke` — the end-to-end smoke harness CI runs
"""

from repro.serve.checkpoint import (
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.clock import LockstepClock
from repro.serve.daemon import (
    ServeConfig,
    ServeDaemon,
    result_digest,
    serve_until_drained,
)
from repro.serve.ingest import IngestQueue
from repro.serve.loadgen import LoadConfig, LoadReport, run_load
from repro.serve.metrics import render_metrics
from repro.serve.protocol import (
    IngestLine,
    Response,
    format_request,
    parse_request_line,
    parse_response_line,
)

__all__ = [
    "IngestLine",
    "IngestQueue",
    "LoadConfig",
    "LoadReport",
    "LockstepClock",
    "Response",
    "ServeConfig",
    "ServeDaemon",
    "format_request",
    "latest_checkpoint",
    "load_checkpoint",
    "parse_request_line",
    "parse_response_line",
    "render_metrics",
    "result_digest",
    "run_load",
    "save_checkpoint",
    "serve_until_drained",
]
