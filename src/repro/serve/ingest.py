"""Bounded ingest queue with explicit backpressure.

The daemon never buffers without bound: accepted requests enter a
fixed-capacity FIFO between the network layer and the simulation
session, and when the queue is full the *client* is told to back off
with an explicit ``RETRY <after_s>`` response — the request is dropped
at the door, unacknowledged, so "zero lost acknowledged requests"
stays trivially true under any overload.

The advised backoff is derived from the observed drain rate: the feed
worker reports how long each batch took, an exponentially-weighted
per-request cost absorbs the noise, and a rejected client is told to
come back roughly when half the current backlog will have drained.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import ConfigurationError

#: Clamp for the advised retry backoff (seconds).
MIN_RETRY_AFTER_S = 0.02
MAX_RETRY_AFTER_S = 5.0

#: EWMA smoothing for the per-request drain cost.
DRAIN_EWMA_ALPHA = 0.2

#: Pessimistic per-request cost before the first drain observation.
INITIAL_DRAIN_S = 1e-4


class IngestQueue:
    """Fixed-capacity FIFO between ingest and the feed worker.

    Items are opaque to the queue (the daemon enqueues
    ``(IORequest, ack_callback)`` pairs). All methods are event-loop
    local — the daemon is single-threaded asyncio, so no locking.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"ingest queue capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._items: list[Any] = []
        self._start = 0  # pop cursor: amortized O(1) FIFO over a list
        self._available = asyncio.Event()
        self._drain_cost_s = INITIAL_DRAIN_S
        self.accepted_total = 0
        self.rejected_total = 0

    def __len__(self) -> int:
        return len(self._items) - self._start

    @property
    def depth(self) -> int:
        return len(self)

    def offer(self, item: Any) -> tuple[bool, float]:
        """Try to enqueue; returns ``(accepted, retry_after_s)``.

        ``retry_after_s`` is 0.0 on acceptance, else the advised
        backoff for the explicit rejection.
        """
        if len(self) >= self.capacity:
            self.rejected_total += 1
            return False, self.retry_after_s()
        self._items.append(item)
        self.accepted_total += 1
        self._available.set()
        return True, 0.0

    def take_batch(self, max_items: int) -> list[Any]:
        """Pop up to ``max_items`` in FIFO order (may be empty)."""
        start = self._start
        end = min(start + max_items, len(self._items))
        batch = self._items[start:end]
        self._start = end
        if self._start >= len(self._items):
            self._items.clear()
            self._start = 0
            self._available.clear()
        return batch

    async def wait_for_items(self) -> None:
        """Block until at least one item is queued."""
        await self._available.wait()

    def note_drain(self, items: int, wall_s: float) -> None:
        """Feed-worker telemetry: ``items`` drained in ``wall_s``."""
        if items <= 0:
            return
        per_item = max(wall_s / items, 0.0)
        self._drain_cost_s += DRAIN_EWMA_ALPHA * (
            per_item - self._drain_cost_s
        )

    def retry_after_s(self) -> float:
        """Advised backoff: roughly half the backlog's drain time."""
        backlog = max(len(self), 1)
        estimate = 0.5 * backlog * self._drain_cost_s
        return min(max(estimate, MIN_RETRY_AFTER_S), MAX_RETRY_AFTER_S)
