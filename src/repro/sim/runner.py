"""One-call experiment helpers.

The benchmarks and examples all funnel through :func:`run_simulation`,
which builds the configured policy, write policy, and simulator, runs
it, and returns the :class:`~repro.sim.results.SimulationResult`.

Both the batch path and the online service mode are expressed on the
same incremental core: :func:`build_session` assembles a
:class:`~repro.sim.session.SimulationSession` from the by-name
parameters, ``run_simulation`` drives it with
:meth:`~repro.sim.session.SimulationSession.run_batch`, and the
``repro serve`` daemon drives an identically-built session with
:meth:`~repro.sim.session.SimulationSession.feed`.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import Sequence

from repro.cache.policies import (
    ARCPolicy,
    BeladyPolicy,
    ClockPolicy,
    FIFOPolicy,
    LIRSPolicy,
    LRUPolicy,
    MQPolicy,
)
from repro.cache.policies.base import ReplacementPolicy
from repro.cache.write import (
    LogDevice,
    PeriodicFlushPolicy,
    WBEUPolicy,
    WriteBackPolicy,
    WritePolicy,
    WriteThroughPolicy,
    WTDUPolicy,
)
from repro.core.classifier import DiskClassifier
from repro.core.opg import OPGPolicy
from repro.core.pa import PowerAwarePolicy, make_pa_lru
from repro.core.prefetch import SequentialWakePrefetcher
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.observe.bus import EventBus
from repro.observe.invariants import InvariantChecker
from repro.observe.sinks import JSONLSink, MetricsSink
from repro.power.envelope import EnergyEnvelope
from repro.power.specs import build_power_model
from repro.sim.config import SimulationConfig
from repro.sim.engine import StorageSimulator
from repro.sim.results import SimulationResult
from repro.sim.session import (
    SessionCheckpoint,
    SimulationSession,
    replay_checkpoint,
)
from repro.traces.record import IORequest

POLICY_NAMES = (
    "lru",
    "fifo",
    "clock",
    "arc",
    "mq",
    "lirs",
    "belady",
    "opg",
    "pa-lru",
    "pa-arc",
    "pa-mq",
    "pa-lirs",
    "infinite",
)

WRITE_POLICY_NAMES = (
    "write-through",
    "write-back",
    "wbeu",
    "wtdu",
    "periodic-flush",
)


def build_policy(
    name: str,
    config: SimulationConfig,
    theta: float = 0.0,
    pa_alpha: float = 0.5,
    pa_p: float = 0.8,
    pa_epoch_s: float = 900.0,
) -> ReplacementPolicy:
    """Build a replacement policy by name against a configuration.

    ``"infinite"`` returns plain LRU — the caller must pair it with
    ``cache_capacity_blocks=None`` (done automatically by
    :func:`run_simulation`), making the policy irrelevant.
    """
    key = name.lower()
    capacity = config.cache_capacity_blocks
    if key in ("lru", "infinite"):
        return LRUPolicy()
    if key == "fifo":
        return FIFOPolicy()
    if key == "clock":
        return ClockPolicy()
    if key in ("arc", "mq", "lirs"):
        if capacity is None:
            raise ConfigurationError(f"{name} needs a finite cache capacity")
        if key == "arc":
            return ARCPolicy(capacity)
        if key == "mq":
            return MQPolicy(capacity)
        return LIRSPolicy(capacity)
    if key == "belady":
        return BeladyPolicy()
    if key == "opg":
        model = build_power_model(config.spec, config.nap_rpms)
        dpm = config.make_dpm(model)
        return OPGPolicy(dpm.idle_energy, theta=theta)
    if key.startswith("pa-"):
        model = build_power_model(config.spec, config.nap_rpms)
        threshold_t = EnergyEnvelope(model).breakeven_time(1)
        if key == "pa-lru":
            return make_pa_lru(
                num_disks=config.num_disks,
                threshold_t=threshold_t,
                alpha=pa_alpha,
                p=pa_p,
                epoch_length_s=pa_epoch_s,
            )
        # PA over any capacity-aware base policy (the paper's "this
        # technique can also be applied to ARC or MQ"). Each sub-policy
        # may grow to the whole cache, so both get full capacity.
        bases = {"pa-arc": ARCPolicy, "pa-mq": MQPolicy, "pa-lirs": LIRSPolicy}
        base_cls = bases.get(key)
        if base_cls is not None:
            if capacity is None:
                raise ConfigurationError(f"{name} needs a finite cache capacity")
            classifier = DiskClassifier(
                num_disks=config.num_disks,
                threshold_t=threshold_t,
                alpha=pa_alpha,
                p=pa_p,
                epoch_length_s=pa_epoch_s,
            )
            return PowerAwarePolicy(classifier, lambda: base_cls(capacity))
    raise ConfigurationError(
        f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
    )


def build_write_policy(
    name: str,
    num_disks: int,
    wbeu_dirty_threshold: int = 1024,
    log_region_blocks: int = 4096,
    flush_interval_s: float = 30.0,
) -> WritePolicy:
    """Build a write policy by name."""
    key = name.lower()
    if key in ("write-through", "wt"):
        return WriteThroughPolicy()
    if key in ("write-back", "wb"):
        return WriteBackPolicy()
    if key == "wbeu":
        return WBEUPolicy(dirty_threshold=wbeu_dirty_threshold)
    if key == "wtdu":
        return WTDUPolicy(
            LogDevice(num_disks, region_capacity_blocks=log_region_blocks)
        )
    if key == "periodic-flush":
        return PeriodicFlushPolicy(flush_interval_s=flush_interval_s)
    raise ConfigurationError(
        f"unknown write policy {name!r}; expected one of {WRITE_POLICY_NAMES}"
    )


def run_simulation(
    trace: Sequence[IORequest],
    policy: str = "lru",
    *,
    num_disks: int,
    cache_blocks: int | None,
    dpm: str = "practical",
    write_policy: str = "write-back",
    theta: float = 0.0,
    pa_alpha: float = 0.5,
    pa_p: float = 0.8,
    pa_epoch_s: float = 900.0,
    wbeu_dirty_threshold: int = 1024,
    log_region_blocks: int = 4096,
    flush_interval_s: float = 30.0,
    prefetch_depth: int = 0,
    label: str | None = None,
    config: SimulationConfig | None = None,
    probe=None,
    trace_events: bool = False,
    trace_file: str | Path | None = None,
    fault_plan: FaultPlan | None = None,
) -> SimulationResult:
    """Run one experiment end-to-end.

    Args:
        trace: Time-ordered request sequence.
        policy: One of :data:`POLICY_NAMES`.
        num_disks: Array size (ignored if ``config`` given).
        cache_blocks: Cache capacity (``"infinite"`` policy overrides
            this to unbounded).
        dpm: ``"practical"``, ``"oracle"``, or ``"always_on"``.
        write_policy: One of :data:`WRITE_POLICY_NAMES`.
        prefetch_depth: > 0 enables the power-aware sequential
            prefetcher riding paid-for spin-ups (online policies only).
        config: Full configuration override.
        probe: Extra event hook (callable or sink) subscribed to the
            run's event stream.
        trace_events: Attach a :class:`MetricsSink` and surface its
            snapshot as ``result.trace_metrics``.
        trace_file: Write every event as JSONL to this path.
        fault_plan: Arm seeded disk-fault injection for the run. Plans
            carrying a crash point are rejected here — crashes are the
            :mod:`repro.faults.harness` job (``run_simulation`` always
            runs traces to completion, so a crash point would be
            silently ignored).

    Setting ``REPRO_CHECK_INVARIANTS=1`` in the environment attaches an
    :class:`~repro.observe.invariants.InvariantChecker` to every run
    (used by CI), raising
    :class:`~repro.errors.InvariantViolation` on any breach.
    """
    if fault_plan is not None and fault_plan.has_crash_point:
        raise ConfigurationError(
            "fault_plan carries a crash point, which run_simulation would "
            "silently ignore; use repro.faults.run_crash_scenario instead"
        )
    check_invariants = os.environ.get("REPRO_CHECK_INVARIANTS", "") not in (
        "",
        "0",
    )
    metrics: MetricsSink | None = None
    effective_probe = probe
    bus: EventBus | None = None
    if trace_events or trace_file is not None or check_invariants:
        bus = EventBus()
        if trace_events:
            metrics = bus.attach(MetricsSink())
        if trace_file is not None:
            bus.attach(JSONLSink(trace_file))
        if check_invariants:
            bus.attach(InvariantChecker())
        if probe is not None:
            bus.attach(probe)
        effective_probe = bus
    session = build_session(
        trace,
        policy,
        num_disks=num_disks,
        cache_blocks=cache_blocks,
        dpm=dpm,
        write_policy=write_policy,
        theta=theta,
        pa_alpha=pa_alpha,
        pa_p=pa_p,
        pa_epoch_s=pa_epoch_s,
        wbeu_dirty_threshold=wbeu_dirty_threshold,
        log_region_blocks=log_region_blocks,
        flush_interval_s=flush_interval_s,
        prefetch_depth=prefetch_depth,
        label=label,
        config=config,
        probe=effective_probe,
        fault_plan=fault_plan,
    )
    try:
        result = session.run_batch()
    finally:
        if bus is not None:
            bus.close()
    if metrics is not None:
        result = dataclasses.replace(result, trace_metrics=metrics.as_dict())
    return result


def build_session(
    trace: Sequence[IORequest] = (),
    policy: str = "lru",
    *,
    num_disks: int,
    cache_blocks: int | None,
    dpm: str = "practical",
    write_policy: str = "write-back",
    theta: float = 0.0,
    pa_alpha: float = 0.5,
    pa_p: float = 0.8,
    pa_epoch_s: float = 900.0,
    wbeu_dirty_threshold: int = 1024,
    log_region_blocks: int = 4096,
    flush_interval_s: float = 30.0,
    prefetch_depth: int = 0,
    label: str | None = None,
    config: SimulationConfig | None = None,
    probe=None,
    fault_plan: FaultPlan | None = None,
    record_requests: bool = False,
) -> SimulationSession:
    """Assemble a :class:`SimulationSession` from by-name parameters.

    The shared construction path under both drive styles: batch runs
    pass the trace and call ``run_batch()``; live sessions (the ``repro
    serve`` daemon, the checkpoint tests) pass no trace and ``feed()``
    stamped batches. When ``config`` is ``None`` the by-name parameters
    are kept as the session's rebuild recipe, making it checkpointable
    (with ``record_requests=True``).
    """
    if policy.lower() == "infinite":
        cache_blocks = None
    rebuild_params = None
    if config is None:
        config = SimulationConfig(
            num_disks=num_disks,
            cache_capacity_blocks=cache_blocks,
            dpm=dpm,
        )
        rebuild_params = {
            "policy": policy,
            "num_disks": num_disks,
            "cache_blocks": cache_blocks,
            "dpm": dpm,
            "write_policy": write_policy,
            "theta": theta,
            "pa_alpha": pa_alpha,
            "pa_p": pa_p,
            "pa_epoch_s": pa_epoch_s,
            "wbeu_dirty_threshold": wbeu_dirty_threshold,
            "log_region_blocks": log_region_blocks,
            "flush_interval_s": flush_interval_s,
            "prefetch_depth": prefetch_depth,
            "label": label,
        }
    replacement = build_policy(
        policy,
        config,
        theta=theta,
        pa_alpha=pa_alpha,
        pa_p=pa_p,
        pa_epoch_s=pa_epoch_s,
    )
    writer = build_write_policy(
        write_policy,
        num_disks=config.num_disks,
        wbeu_dirty_threshold=wbeu_dirty_threshold,
        log_region_blocks=log_region_blocks,
        flush_interval_s=flush_interval_s,
    )
    prefetcher = (
        SequentialWakePrefetcher(depth=prefetch_depth)
        if prefetch_depth > 0
        else None
    )
    simulator = StorageSimulator(
        trace,
        config,
        replacement,
        write_policy=writer,
        prefetcher=prefetcher,
        label=label or ("infinite" if cache_blocks is None else policy),
        probe=probe,
        fault_plan=fault_plan,
    )
    return SimulationSession(
        simulator,
        rebuild_params=rebuild_params,
        record_requests=record_requests,
    )


def restore_session(
    checkpoint: SessionCheckpoint, *, probe=None
) -> SimulationSession:
    """Rebuild a checkpointed session by replaying its request prefix.

    The restored session has served exactly the checkpointed requests;
    feeding it the remaining stream continues bit-identically to a
    session that was never checkpointed (the property test in
    ``tests/sim/test_session.py`` spreads restore points across whole
    traces to prove it).
    """
    return replay_checkpoint(checkpoint, build_session, probe=probe)
