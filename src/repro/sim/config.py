"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.power.adaptive import AdaptiveThresholdDPM
from repro.power.dpm import (
    AlwaysOnDPM,
    DiskPowerManager,
    OracleDPM,
    PracticalDPM,
)
from repro.power.modes import PowerModel
from repro.power.specs import DEFAULT_NAP_RPMS, DiskSpec, ULTRASTAR_36Z15
from repro.units import DEFAULT_BLOCK_SIZE

#: Recognized DPM scheme names.
DPM_KINDS = ("practical", "oracle", "always_on", "adaptive")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything about a run except the trace and the policies.

    Defaults reproduce the paper's setup: IBM Ultrastar 36Z15 disks
    with four NAP modes, Practical (2-competitive threshold) DPM, 8 KiB
    blocks.
    """

    num_disks: int
    cache_capacity_blocks: int | None
    dpm: str = "practical"
    spec: DiskSpec = ULTRASTAR_36Z15
    nap_rpms: tuple[float, ...] = DEFAULT_NAP_RPMS
    block_size: int = DEFAULT_BLOCK_SIZE
    #: Latency of a storage-cache hit as seen by the client.
    cache_hit_latency_s: float = 0.2e-3
    #: Idle time accounted after the last request (all disks wind down).
    trace_tail_s: float = 60.0
    #: Multi-speed disk design (Section 2.1): ``"full-speed-only"`` —
    #: the paper's choice, requests serve only at maximum RPM after a
    #: spin-up — or ``"all-speed"`` — the Carrera/Bianchini (DRPM)
    #: design servicing at reduced speeds (requires practical DPM).
    disk_design: str = "full-speed-only"

    def __post_init__(self) -> None:
        if self.num_disks < 1:
            raise ConfigurationError("num_disks must be >= 1")
        if (
            self.cache_capacity_blocks is not None
            and self.cache_capacity_blocks < 1
        ):
            raise ConfigurationError(
                "cache_capacity_blocks must be >= 1 or None (infinite)"
            )
        if self.dpm not in DPM_KINDS:
            raise ConfigurationError(
                f"dpm must be one of {DPM_KINDS}, got {self.dpm!r}"
            )
        if self.trace_tail_s < 0:
            raise ConfigurationError("trace_tail_s must be >= 0")
        if self.disk_design not in ("full-speed-only", "all-speed"):
            raise ConfigurationError(
                "disk_design must be 'full-speed-only' or 'all-speed', "
                f"got {self.disk_design!r}"
            )
        if self.disk_design == "all-speed" and self.dpm not in (
            "practical",
            "adaptive",
        ):
            raise ConfigurationError(
                "the all-speed disk design tracks the threshold ladder "
                "and therefore requires threshold-based DPM "
                "('practical' or 'adaptive')"
            )

    def make_dpm(self, model: PowerModel) -> DiskPowerManager:
        """Build one DPM instance of the configured kind."""
        if self.dpm == "practical":
            return PracticalDPM(model)
        if self.dpm == "oracle":
            return OracleDPM(model)
        if self.dpm == "adaptive":
            return AdaptiveThresholdDPM(model)
        return AlwaysOnDPM(model)
