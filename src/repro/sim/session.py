"""Incremental simulation sessions.

:class:`SimulationSession` is the stepping API the online service mode
(:mod:`repro.serve`) and the batch path share: requests are *fed* in
time-ordered batches, simulated time can be *advanced* across request
gaps, the accumulated state can be *checkpointed*, and *finalize*
produces the same :class:`~repro.sim.results.SimulationResult` a batch
run returns. ``run_simulation`` is re-expressed on top of a session
(see :func:`repro.sim.runner.build_session`), and the differential
tests in ``tests/sim/test_session.py`` pin the two drive styles —
``feed()`` request by request versus the batch fast path — to
bit-identical results.

Checkpointing is **replay-based**, the same ground truth the crash
harness (:mod:`repro.faults.harness`) relies on: the simulator is a
deterministic function of (parameters, request sequence), so a
checkpoint is the rebuild parameters plus the exact stamped requests
fed so far. Restoring replays that prefix through a fresh session,
after which the restored session is state-identical to the original —
continuing it with the same requests yields bit-identical results.
This trades restore time for zero serialization coupling: no policy,
cache, or DPM internals ever need to be pickled, and every future
policy is checkpointable by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cache.policies.base import OfflinePolicy
from repro.errors import ConfigurationError, SimulationError, TraceError
from repro.sim.engine import StorageSimulator
from repro.sim.results import SimulationResult
from repro.traces.record import IORequest


@dataclass(frozen=True, slots=True)
class SessionCheckpoint:
    """Everything needed to rebuild a session at a request boundary.

    ``params`` are the :func:`~repro.sim.runner.build_session` keyword
    arguments; ``requests`` is the full stamped request prefix fed
    before the checkpoint; ``watermark`` is the simulated-time floor
    the session had advanced to.
    """

    params: dict
    requests: tuple[IORequest, ...]
    watermark: float

    @property
    def served(self) -> int:
        return len(self.requests)

    def to_dict(self) -> dict:
        """JSON-safe form (the serve layer's checkpoint file body)."""
        return {
            "params": dict(self.params),
            "watermark": self.watermark,
            "served": self.served,
            "requests": [
                [r.time, r.disk, r.block, r.nblocks, int(r.is_write)]
                for r in self.requests
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionCheckpoint":
        return cls(
            params=dict(data["params"]),
            watermark=float(data["watermark"]),
            requests=tuple(
                IORequest(
                    time=float(t),
                    disk=int(disk),
                    block=int(block),
                    nblocks=int(nblocks),
                    is_write=bool(is_write),
                )
                for t, disk, block, nblocks, is_write in data["requests"]
            ),
        )


class SimulationSession:
    """Drive one simulation incrementally.

    Args:
        simulator: A fresh :class:`~repro.sim.engine.StorageSimulator`.
            For :meth:`run_batch` it must have been constructed with
            the trace; for :meth:`feed`-driven sessions it is built
            with an empty trace.
        rebuild_params: The :func:`~repro.sim.runner.build_session`
            keyword arguments that produced ``simulator``; required for
            :meth:`checkpoint` (a checkpoint must be able to rebuild).
        record_requests: Keep every fed request in memory so
            :meth:`checkpoint` can emit the replay prefix. Costs one
            tuple per request; leave off for plain batch runs.
    """

    def __init__(
        self,
        simulator: StorageSimulator,
        *,
        rebuild_params: dict | None = None,
        record_requests: bool = False,
    ) -> None:
        self.simulator = simulator
        self.rebuild_params = rebuild_params
        self.record_requests = record_requests
        self._log: list[IORequest] = []
        self._watermark = 0.0
        self._last_request_time = 0.0
        self._served = 0
        self._finalized = False
        self.result: SimulationResult | None = None

    # -- introspection ----------------------------------------------------

    @property
    def served(self) -> int:
        """Requests fed (and responded to) so far."""
        return self._served

    @property
    def now(self) -> float:
        """The session's simulated-time floor (last feed/advance)."""
        return self._watermark

    @property
    def last_request_time(self) -> float:
        return self._last_request_time

    @property
    def finalized(self) -> bool:
        return self._finalized

    # -- stepping ---------------------------------------------------------

    def feed(self, batch: Iterable[IORequest]) -> list[float]:
        """Serve a time-ordered batch; returns per-request latencies.

        Request times must be non-decreasing across *all* feeds and
        :meth:`advance_to` calls — the engine's trace-order contract,
        enforced here because live batches arrive piecewise.
        """
        self._check_open()
        if isinstance(self.simulator.policy, OfflinePolicy):
            raise ConfigurationError(
                f"offline policy {self.simulator.policy.name!r} needs the "
                "whole trace up front and cannot be fed incrementally; "
                "use run_batch() or an online policy"
            )
        handle = self.simulator.handle_request
        record = self._log.append if self.record_requests else None
        watermark = self._watermark
        responses: list[float] = []
        for req in batch:
            if req.time < watermark:
                raise TraceError(
                    f"request at t={req.time} arrived behind the session "
                    f"watermark {watermark}; feeds must be time-ordered"
                )
            watermark = req.time
            responses.append(handle(req))
            if record is not None:
                record(req)
        self._served += len(responses)
        if responses:
            self._last_request_time = watermark
        self._watermark = watermark
        return responses

    def advance_to(self, time_s: float) -> None:
        """Raise the simulated-time floor without serving requests.

        The engine reconstructs idle gaps lazily (disks account their
        idle residency when next touched or at finalize), so advancing
        costs nothing now; it constrains future feeds to ``time_s`` or
        later and raises the default :meth:`finalize` horizon.
        """
        self._check_open()
        if time_s < self._watermark:
            raise TraceError(
                f"cannot advance to t={time_s}, behind the watermark "
                f"{self._watermark}"
            )
        self._watermark = time_s

    def checkpoint(self) -> SessionCheckpoint:
        """Snapshot the session at the current request boundary."""
        self._check_open()
        if not self.record_requests:
            raise ConfigurationError(
                "checkpointing needs record_requests=True at session "
                "construction (the checkpoint is a replay prefix)"
            )
        if self.rebuild_params is None:
            raise ConfigurationError(
                "this session has no rebuild parameters (it was built "
                "around a custom SimulationConfig or simulator); "
                "checkpoints must be able to rebuild the session"
            )
        return SessionCheckpoint(
            params=dict(self.rebuild_params),
            requests=tuple(self._log),
            watermark=self._watermark,
        )

    # -- completion -------------------------------------------------------

    def finalize(self, end_time: float | None = None) -> SimulationResult:
        """Wind the array down and build the report (once).

        Without ``end_time`` the run ends at the batch path's horizon —
        last request time plus the configured trace tail — or at the
        :meth:`advance_to` watermark if that is later.
        """
        self._check_open()
        if end_time is None:
            tail = self.simulator.config.trace_tail_s
            end_time = max(self._watermark, self._last_request_time + tail)
        self._finalized = True
        self.result = self.simulator.finish(end_time)
        return self.result

    def run_batch(self) -> SimulationResult:
        """The batch path: run the constructor trace end to end.

        Delegates to :meth:`StorageSimulator.run` — offline-policy
        preparation, the columnar fast loop, and the trace-tail horizon
        all behave exactly as they always have; the session only owns
        the lifecycle. Mutually exclusive with :meth:`feed`.
        """
        self._check_open()
        if self._served:
            raise SimulationError(
                "run_batch() on a session that has already been fed; "
                "finish the incremental run with finalize()"
            )
        trace = self.simulator.trace
        self._finalized = True
        self._served = len(trace)
        if len(trace):
            self._last_request_time = trace[-1].time
            self._watermark = self._last_request_time
        self.result = self.simulator.run()
        return self.result

    def _check_open(self) -> None:
        if self._finalized:
            raise SimulationError("session already finalized")


def replay_checkpoint(
    checkpoint: SessionCheckpoint,
    build,
    *,
    probe=None,
) -> SimulationSession:
    """Rebuild a session from a checkpoint by replaying its prefix.

    ``build`` is the session factory (normally
    :func:`repro.sim.runner.build_session`; injected to keep this
    module import-light). The returned session has served exactly the
    checkpointed requests and carries the checkpointed watermark, so
    feeding it the post-checkpoint request stream continues
    bit-identically to the uninterrupted run.
    """
    params = dict(checkpoint.params)
    session: SimulationSession = build(
        probe=probe, record_requests=True, **params
    )
    if checkpoint.requests:
        session.feed(checkpoint.requests)
    if checkpoint.watermark > session.now:
        session.advance_to(checkpoint.watermark)
    return session


def ordered_batches(
    requests: Sequence[IORequest], batch_size: int
) -> Iterable[Sequence[IORequest]]:
    """Split a trace into feed-sized batches (test/loadgen helper)."""
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    for start in range(0, len(requests), batch_size):
        yield requests[start : start + batch_size]
