"""Parameter-sweep utilities.

A thin, dependency-free grid runner for experiment campaigns: build the
cartesian product of parameter axes, run one simulation per point, and
collect flat result records suitable for tables or CSV export. The
figure-specific builders in :mod:`repro.analysis.figures` cover the
paper's own experiments; this module serves ad-hoc exploration.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.sim.runner import run_simulation
from repro.traces.record import IORequest

#: A callable mapping sweep parameters to a trace (lets axes control
#: the workload as well as the simulation).
TraceFactory = Callable[..., Sequence[IORequest]]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: its parameters and the resulting run."""

    params: dict[str, Any]
    result: SimulationResult

    def record(self) -> dict[str, Any]:
        """Flat dict: parameters + headline metrics."""
        r = self.result
        return {
            **self.params,
            "energy_j": r.total_energy_j,
            "mean_response_s": r.response.mean_s,
            "p95_response_s": r.response.p95_s,
            "hit_ratio": r.hit_ratio,
            "cold_fraction": r.cold_miss_fraction,
            "spinups": r.spinups,
            "disk_reads": r.disk_reads,
            "disk_writes": r.disk_writes,
        }


@dataclass
class SweepResult:
    """All points of one sweep, in grid order."""

    points: list[SweepPoint] = field(default_factory=list)

    def records(self) -> list[dict[str, Any]]:
        return [p.record() for p in self.points]

    def to_csv(self, path: str | Path) -> None:
        """Write one row per grid point."""
        records = self.records()
        if not records:
            raise ConfigurationError("empty sweep has nothing to export")
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(records[0]))
            writer.writeheader()
            writer.writerows(records)

    def best(self, metric: str = "energy_j", *, maximize: bool = False) -> SweepPoint:
        """The point minimizing ``metric`` (or maximizing it).

        Cost-like metrics (``energy_j``, response times) want the
        default; quality metrics (``hit_ratio``) want ``maximize=True``.
        """
        if not self.points:
            raise ConfigurationError("empty sweep has no best point")
        choose = max if maximize else min
        return choose(self.points, key=lambda p: p.record()[metric])


def grid_sweep(
    trace: Sequence[IORequest] | TraceFactory,
    axes: dict[str, Sequence[Any]],
    *,
    trace_params: Sequence[str] = (),
    num_disks: int,
    cache_blocks: int | None,
    workers: int = 1,
    store=None,
    journal=None,
    retry=None,
    on_error: str = "raise",
    **fixed,
) -> SweepResult:
    """Run one simulation per point of the cartesian parameter grid.

    Execution is delegated to the campaign executor
    (:func:`repro.campaign.executor.run_points`): the default
    ``workers=1`` runs serially, in process and in grid order, and is
    numerically identical to the historical inline loop; ``workers > 1``
    fans grid points out over a process pool. An optional result store
    makes re-runs skip already-computed points, and a journal records
    per-point telemetry.

    Args:
        trace: A fixed trace, or a factory invoked with the grid point's
            ``trace_params`` subset (so axes can regenerate workloads).
            Factories must be picklable (module-level) for ``workers > 1``.
        axes: Parameter name -> values. Names in ``trace_params`` go to
            the trace factory; the rest go to
            :func:`~repro.sim.runner.run_simulation`.
        trace_params: Which axis names parameterize the trace factory.
        num_disks / cache_blocks / fixed: Passed through to every run.
        workers: Process-pool size (1 = serial).
        store: Optional :class:`~repro.campaign.store.ResultStore`.
        journal: Optional :class:`~repro.campaign.journal.RunJournal`.
        retry: Optional :class:`~repro.campaign.executor.RetryPolicy`.
        on_error: ``"raise"`` (default) or ``"record"`` — see
            :func:`~repro.campaign.executor.run_points`. Recorded
            failures are journaled and omitted from the result.
    """
    from repro.campaign.executor import PointTask, run_points

    if not axes:
        raise ConfigurationError("need at least one sweep axis")
    trace_axis = set(trace_params)
    unknown = trace_axis - set(axes)
    if unknown:
        raise ConfigurationError(f"trace_params not in axes: {sorted(unknown)}")
    if trace_axis and not callable(trace):
        raise ConfigurationError(
            "trace_params given, so `trace` must be a factory callable"
        )
    names = list(axes)
    tasks = []
    for index, values in enumerate(itertools.product(*(axes[n] for n in names))):
        params = dict(zip(names, values))
        trace_args = (
            {k: v for k, v in params.items() if k in trace_axis}
            if callable(trace)
            else None
        )
        run_kwargs = {k: v for k, v in params.items() if k not in trace_axis}
        # axes override the sweep-wide defaults (e.g. a cache_blocks axis)
        kwargs = {
            "num_disks": num_disks,
            "cache_blocks": cache_blocks,
            **fixed,
            **run_kwargs,
        }
        tasks.append(
            PointTask(
                index=index,
                params=params,
                run_kwargs=kwargs,
                trace_args=trace_args,
            )
        )
    outcomes = run_points(
        tasks,
        trace=trace,
        point_fn=run_simulation,
        workers=workers,
        store=store,
        journal=journal,
        retry=retry,
        on_error=on_error,
    )
    sweep = SweepResult()
    for outcome in outcomes:
        if outcome.ok:
            sweep.points.append(
                SweepPoint(params=outcome.task.params, result=outcome.result)
            )
    return sweep
