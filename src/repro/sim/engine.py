"""The full-system simulation engine.

Processes a trace chronologically. Per block access:

* **read hit** — cache latency only.
* **read miss** — a disk read at the request's arrival time (paying any
  spin-up), then insertion; evicted dirty blocks are persisted by the
  write policy at the same instant (queued behind the read, so the
  demand read is not delayed by writeback traffic); WBEU/WTDU get the
  ``after_read_wake`` hook to piggyback flushes on the spin-up.
* **write** — write-allocate into the cache, then the write policy
  decides what (if anything) hits the disk or the log device and what
  latency the client observes.

The per-request response time is the slowest of its block accesses.
"""

from __future__ import annotations

import gc
from bisect import bisect_left, bisect_right, insort
from heapq import heappop, heappush
from math import inf
from typing import Sequence

from repro.cache.block import BlockState
from repro.cache.cache import StorageCache
from repro.cache.policies.base import OfflinePolicy, ReplacementPolicy
from repro.cache.policies.lru import LRUPolicy
from repro.cache.write.base import WritePolicy
from repro.cache.write.write_back import WriteBackPolicy
from repro.cache.write.wtdu import WTDUPolicy
from repro.core import kernels
from repro.core.bloom import BloomFilter
from repro.core.chunked import ChunkedSortedList
from repro.core.classifier import DiskClass, DiskClassifier
from repro.core.opg import OPGPolicy
from repro.core.pa import PowerAwarePolicy
from repro.core.prefetch import Prefetcher
from repro.disk.array import DiskArray
from repro.disk.disk import SimulatedDisk
from repro.disk.multispeed import AllSpeedServiceDisk
from repro.errors import (
    ConfigurationError,
    PolicyError,
    SimulationError,
    TraceError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.observe.events import RequestComplete, SimulationStart
from repro.power.specs import build_power_model
from repro.sim.config import SimulationConfig
from repro.sim.results import DiskReport, ResponseStats, SimulationResult
from repro.traces.columnar import ColumnarTrace
from repro.traces.record import IORequest, iter_accesses

#: Fast-path audit registry, enforced statically by ``repro check``'s
#: ``fastpath`` rule: every concrete subclass of the gated base classes
#: found anywhere in ``src/repro`` must be listed here. Listing a class
#: asserts it has been audited for bit-identity between the inlined
#: fast paths (``_run_columnar_fast`` below, ``SimulatedDisk.
#: submit_quick``, the memoized DPM tables) and the polymorphic loop —
#: i.e. the columnar/legacy equivalence tests and ``repro bench
#: --check`` cover it. When you add a subclass, run those, then add its
#: name; the checker fails the build until you do.
#:
#: The ``BatchKernel`` pseudo-base gates the vectorized kernels of
#: :mod:`repro.core.kernels` the same way: every function carrying the
#: ``@batch_kernel`` decorator must be listed here, asserting its
#: property-test coverage against the scalar reference
#: (``tests/property/test_kernel_equivalence.py``) and its use in a
#: differentially-tested fused loop.
FAST_PATH_AUDITED: dict[str, frozenset[str]] = {
    "ReplacementPolicy": frozenset(
        {
            # Abstract intermediate (prepare() contract only).
            "OfflinePolicy",
            "LRUPolicy",
            "FIFOPolicy",
            "ClockPolicy",
            "ARCPolicy",
            "MQPolicy",
            "LIRSPolicy",
            "BeladyPolicy",
            "OPGPolicy",
            "PowerAwarePolicy",
        }
    ),
    "WritePolicy": frozenset(
        {
            "WriteBackPolicy",
            "WriteThroughPolicy",
            "WBEUPolicy",
            "WTDUPolicy",
            "PeriodicFlushPolicy",
        }
    ),
    "DiskPowerManager": frozenset(
        {
            "AlwaysOnDPM",
            "OracleDPM",
            "PracticalDPM",
            "AdaptiveThresholdDPM",
        }
    ),
    "BatchKernel": frozenset(
        {
            "bloom_cold_mask",
            "epoch_boundary_table",
            "epoch_roll_counts",
            "histogram_counts",
            "histogram_quantile",
            "next_access_arrays",
            "first_times_by_disk",
        }
    ),
}


class StorageSimulator:
    """One complete simulation run.

    Args:
        trace: Time-ordered requests.
        config: Array/cache/DPM configuration.
        policy: Replacement policy instance (offline policies are
            prepared automatically from the trace).
        write_policy: Write policy; defaults to write-back (the usual
            configuration for a large non-volatile storage cache, and
            the paper's setting for the replacement study).
        label: Report label; defaults to the policy names.
        probe: Optional event hook — any callable taking one
            :class:`~repro.observe.events.Event` (usually an
            :class:`~repro.observe.bus.EventBus`). ``None`` (default)
            disables tracing at near-zero cost.
        fault_plan: Optional :class:`~repro.faults.plan.FaultPlan`; when
            it arms disk faults a seeded
            :class:`~repro.faults.injector.FaultInjector` is built and
            shared by every disk. Crash points are the crash harness's
            job (:mod:`repro.faults.harness`), not the engine's.
    """

    def __init__(
        self,
        trace: Sequence[IORequest],
        config: SimulationConfig,
        policy: ReplacementPolicy,
        write_policy: WritePolicy | None = None,
        prefetcher: Prefetcher | None = None,
        label: str | None = None,
        probe=None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.policy = policy
        self.probe = probe
        self.fault_injector = (
            FaultInjector(fault_plan, probe=probe)
            if fault_plan is not None and fault_plan.injects_disk_faults
            else None
        )
        self.write_policy = write_policy or WriteBackPolicy()
        if prefetcher is not None and isinstance(policy, OfflinePolicy):
            raise ConfigurationError(
                "prefetching admits blocks outside the demand sequence, "
                "which offline policies cannot model; use an online policy"
            )
        self.prefetcher = prefetcher
        self.label = label or f"{policy.name}+{self.write_policy.name}"
        self.power_model = build_power_model(config.spec, config.nap_rpms)
        disk_cls = (
            AllSpeedServiceDisk
            if config.disk_design == "all-speed"
            else SimulatedDisk
        )
        self.array = DiskArray(
            num_disks=config.num_disks,
            spec=config.spec,
            dpm_factory=lambda model: config.make_dpm(model),
            power_model=self.power_model,
            block_size=config.block_size,
            disk_cls=disk_cls,
            probe=probe,
            fault_injector=self.fault_injector,
        )
        self.cache = StorageCache(
            config.cache_capacity_blocks, policy, probe=probe
        )
        # Skip the listener indirection entirely for policies that
        # inherit the no-op hook (everything but the power-aware ones).
        listener = (
            None
            if type(policy).note_disk_activity
            is ReplacementPolicy.note_disk_activity
            else policy.note_disk_activity
        )
        self.write_policy.attach(
            self.cache, self.array, activity_listener=listener
        )
        self.write_policy.set_probe(probe)
        classifier = getattr(policy, "classifier", None)
        if classifier is not None:
            classifier.probe = probe
        self._responses: list[float] = []
        self._disk_reads = 0
        self._ran = False

    def prepare_offline(self) -> None:
        """Prepare an offline policy from the constructor trace.

        No-op for online policies. Called by :meth:`run`; incremental
        drivers (:class:`~repro.sim.session.SimulationSession`, the
        crash harness) that bypass :meth:`run` but still know the whole
        trace up front may call it directly before feeding.
        """
        if isinstance(self.policy, OfflinePolicy):
            if isinstance(self.trace, ColumnarTrace):
                # Vectorized where possible; falls back to the scalar
                # prepare() internally (bit-identical either way).
                self.policy.prepare_columnar(self.trace)
            else:
                self.policy.prepare(iter_accesses(self.trace))

    def run(self) -> SimulationResult:
        """Execute the simulation; may be called once per instance.

        This is the batch drive style; :meth:`handle_request` +
        :meth:`finish` (wrapped by
        :class:`~repro.sim.session.SimulationSession`) is the
        incremental one. Both produce identical results for identical
        request streams — the differential tests pin it.
        """
        if self._ran:
            raise TraceError("simulator instances are single-use")
        self._ran = True
        columnar = isinstance(self.trace, ColumnarTrace)
        self.prepare_offline()
        if self.probe is not None:
            start = self.trace[0].time if len(self.trace) else 0.0
            self.probe(
                SimulationStart(
                    start,
                    self.config.num_disks,
                    self.config.cache_capacity_blocks,
                    self.config.disk_design,
                    self.label,
                    num_modes=len(self.power_model),
                )
            )

        if columnar:
            last_time = self._run_columnar()
        else:
            previous_time = -1.0
            last_time = 0.0
            handle_request = self.handle_request
            for req in self.trace:
                if req.time < previous_time:
                    raise TraceError(
                        f"trace not time-ordered at t={req.time} "
                        f"(< {previous_time})"
                    )
                previous_time = last_time = req.time
                handle_request(req)

        end_time = last_time + self.config.trace_tail_s
        return self.finish(end_time)

    def _run_columnar(self) -> float:
        """The columnar hot loop; returns the last request time.

        Mirrors :meth:`handle_request` exactly — same calls into the
        cache, write policy, and disk array, in the same order — but
        reads the trace straight out of the columns: no
        :class:`IORequest` objects, per-request attribute lookups
        hoisted into locals, and the single-block case (the paper's
        workloads are block-granular) fully inlined.
        """
        trace: ColumnarTrace = self.trace
        if len(trace) == 0:
            return 0.0
        bad = trace.first_disorder()
        if bad is not None:
            raise TraceError(
                f"trace not time-ordered at t={float(trace.times[bad])} "
                f"(< {float(trace.times[bad - 1])})"
            )
        times, disks, blocks, nblocks, writes = trace.as_lists()
        if self.probe is None:
            # The hot loops allocate tracked objects (heap tuples, res
            # items, block states) by the million while holding large
            # live container graphs, so generational GC rescans cost
            # 10-15% of the run; the loops create no reference cycles
            # (refcounting frees everything promptly), so cyclic GC is
            # pure overhead here. Suspend it for the batch, restore in
            # any case.
            was_enabled = gc.isenabled()
            if was_enabled:
                gc.disable()
            try:
                fused = self._fused_loop_for(trace)
                if fused is not None:
                    return fused(trace, times, disks, blocks, writes)
                return self._run_columnar_fast(
                    times, disks, blocks, nblocks, writes
                )
            finally:
                if was_enabled:
                    gc.enable()

        cache_access = self.cache.access
        on_write = self.write_policy.on_write
        on_evicted = self.write_policy.on_evicted
        # Most write policies inherit the no-op after_read_wake; skip
        # the call entirely in that case.
        after_read_wake = (
            None
            if type(self.write_policy).after_read_wake
            is WritePolicy.after_read_wake
            else self.write_policy.after_read_wake
        )
        quick = [d.submit_quick for d in self.array.disks]
        prefetcher = self.prefetcher
        probe = self.probe
        hit_latency = self.config.cache_hit_latency_s
        append_response = self._responses.append
        disk_reads = 0

        time = 0.0
        for time, disk, block, count, is_write in zip(
            times, disks, blocks, nblocks, writes
        ):
            if count == 1:
                key = (disk, block)
                worst = hit_latency
                outcome = cache_access(key, time, is_write)
                if is_write:
                    for victim, state in outcome.evicted:
                        on_evicted(victim, state, time)
                    latency = on_write(key, time)
                    if latency > worst:
                        worst = latency
                elif not outcome.hit:
                    latency, wake_delay = quick[disk](time, block, False)
                    disk_reads += 1
                    if latency > worst:
                        worst = latency
                    for victim, state in outcome.evicted:
                        on_evicted(victim, state, time)
                    if after_read_wake is not None:
                        after_read_wake(disk, time, woke=wake_delay > 0)
                    if prefetcher is not None:
                        self._prefetch(key, wake_delay > 0, time)
            else:
                worst = hit_latency
                for i in range(count):
                    key = (disk, block + i)
                    outcome = cache_access(key, time, is_write)
                    latency = hit_latency
                    if is_write:
                        for victim, state in outcome.evicted:
                            on_evicted(victim, state, time)
                        write_latency = on_write(key, time)
                        if write_latency > latency:
                            latency = write_latency
                    elif not outcome.hit:
                        read_latency, wake_delay = quick[disk](
                            time, block + i, False
                        )
                        disk_reads += 1
                        if read_latency > latency:
                            latency = read_latency
                        for victim, state in outcome.evicted:
                            on_evicted(victim, state, time)
                        if after_read_wake is not None:
                            after_read_wake(disk, time, woke=wake_delay > 0)
                        if prefetcher is not None:
                            self._prefetch(key, wake_delay > 0, time)
                    if latency > worst:
                        worst = latency
            append_response(worst)
            if probe is not None:
                probe(RequestComplete(time, disk, worst, is_write, count))
        self._disk_reads += disk_reads
        return time

    def _run_columnar_fast(self, times, disks, blocks_col, counts, writes):
        """Probe-free columnar loop with the cache access path inlined.

        Only runs when no event hook is attached (the traced loop above
        keeps the full event stream). Performs exactly the operations of
        ``StorageCache.access`` + the traced loop, in the same order;
        the plain-counter statistics are kept in locals and folded into
        ``CacheStats`` once at the end (integer addition commutes, and
        nothing reads the counters mid-run). The columnar/legacy
        equivalence tests pin the results bit for bit.
        """
        cache = self.cache
        policy = self.policy
        write_policy = self.write_policy
        blocks = cache._blocks
        blocks_get = blocks.get
        blocks_pop = blocks.pop
        stats = cache.stats
        seen = stats._seen
        make_room = cache._make_room
        capacity = cache.capacity
        dirty_get = cache._dirty_by_disk.get
        on_access = policy.on_access
        on_insert = policy.on_insert
        policy_evict = policy.evict
        on_write = write_policy.on_write
        on_evicted = write_policy.on_evicted
        after_read_wake = (
            None
            if type(write_policy).after_read_wake
            is WritePolicy.after_read_wake
            else write_policy.after_read_wake
        )
        quick = [d.submit_quick for d in self.array.disks]
        prefetcher = self.prefetcher
        hit_latency = self.config.cache_hit_latency_s
        append_response = self._responses.append
        block_state = BlockState
        disk_reads = 0
        n_acc = n_read = n_write = 0
        n_hit = n_miss = n_cold = n_pf_hits = 0
        n_evict = n_dirty_evict = 0

        time = 0.0
        for time, disk, block, count, is_write in zip(
            times, disks, blocks_col, counts, writes
        ):
            if count == 1:
                key = (disk, block)
                n_acc += 1
                if is_write:
                    n_write += 1
                else:
                    n_read += 1
                worst = hit_latency
                state = blocks_get(key)
                if state is not None:
                    n_hit += 1
                    on_access(key, time, True)
                    if state.prefetched:
                        state.prefetched = False
                        n_pf_hits += 1
                    if is_write:
                        latency = on_write(key, time)
                        if latency > worst:
                            worst = latency
                else:
                    n_miss += 1
                    if key not in seen:
                        n_cold += 1
                        seen.add(key)
                    on_access(key, time, False)
                    if capacity is not None and len(blocks) >= capacity:
                        if (
                            cache._pinned == 0
                            and len(blocks) == capacity
                            and len(policy)
                        ):
                            # _make_room's steady-state case inlined:
                            # exactly one eviction, no pinned blocks
                            victim = policy_evict(time)
                            vstate = blocks_pop(victim, None)
                            if vstate is None:
                                raise SimulationError(
                                    "policy evicted non-resident block "
                                    f"{victim}"
                                )
                            n_evict += 1
                            if vstate.dirty:
                                n_dirty_evict += 1
                                bucket = dirty_get(victim[0])
                                if bucket is not None:
                                    bucket.discard(victim)
                            evicted = ((victim, vstate),)
                        else:
                            evicted = make_room(time)
                    else:
                        evicted = ()
                    blocks[key] = block_state()
                    on_insert(key, time)
                    if is_write:
                        for victim, vstate in evicted:
                            on_evicted(victim, vstate, time)
                        latency = on_write(key, time)
                        if latency > worst:
                            worst = latency
                    else:
                        latency, wake_delay = quick[disk](time, block, False)
                        disk_reads += 1
                        if latency > worst:
                            worst = latency
                        for victim, vstate in evicted:
                            on_evicted(victim, vstate, time)
                        if after_read_wake is not None:
                            after_read_wake(disk, time, woke=wake_delay > 0)
                        if prefetcher is not None:
                            self._prefetch(key, wake_delay > 0, time)
                append_response(worst)
            else:
                # Multi-block requests are rare; go through the cache's
                # regular access path (its counters update CacheStats
                # directly, which composes with the local counters).
                cache_access = cache.access
                worst = hit_latency
                for i in range(count):
                    key = (disk, block + i)
                    outcome = cache_access(key, time, is_write)
                    latency = hit_latency
                    if is_write:
                        for victim, vstate in outcome.evicted:
                            on_evicted(victim, vstate, time)
                        write_latency = on_write(key, time)
                        if write_latency > latency:
                            latency = write_latency
                    elif not outcome.hit:
                        read_latency, wake_delay = quick[disk](
                            time, block + i, False
                        )
                        disk_reads += 1
                        if read_latency > latency:
                            latency = read_latency
                        for victim, vstate in outcome.evicted:
                            on_evicted(victim, vstate, time)
                        if after_read_wake is not None:
                            after_read_wake(disk, time, woke=wake_delay > 0)
                        if prefetcher is not None:
                            self._prefetch(key, wake_delay > 0, time)
                    if latency > worst:
                        worst = latency
                append_response(worst)
        stats.accesses += n_acc
        stats.read_accesses += n_read
        stats.write_accesses += n_write
        stats.hits += n_hit
        stats.misses += n_miss
        stats.cold_misses += n_cold
        stats.prefetch_hits += n_pf_hits
        stats.evictions += n_evict
        stats.dirty_evictions += n_dirty_evict
        self._disk_reads += disk_reads
        return time

    def _fused_loop_for(self, trace: ColumnarTrace):
        """Pick a policy-fused columnar loop, or ``None``.

        The fused loops (``_run_columnar_fast_pa`` /
        ``_run_columnar_fast_opg``) consume precomputed batch-kernel
        plans (:mod:`repro.core.kernels`) and inline the policy state
        machine, so their gates are strict: exact policy types (a
        subclass could override any hook), a single-block trace (the
        kernels model one access per request), no prefetcher (prefetch
        admissions would desynchronize the precomputed Bloom/next-access
        plans), and a numpy backend. The OPG loop additionally requires
        a write policy that never pins blocks (``pins_blocks``): it
        inlines eviction without the pinned-block ``_make_room``
        fallback. Anything else takes the generic
        ``_run_columnar_fast`` with polymorphic policy calls.
        """
        if self.prefetcher is not None or not kernels.have_numpy():
            return None
        if len(trace) and not bool((trace.nblocks == 1).all()):
            return None
        policy = self.policy
        if (
            type(policy) is PowerAwarePolicy
            and type(policy._regular) is LRUPolicy
            and type(policy._priority) is LRUPolicy
            and type(policy.classifier) is DiskClassifier
            and type(policy.classifier._bloom) is BloomFilter
            and policy.classifier._epoch_end is None
            and policy.classifier._bloom._count == 0
            and not policy._home
        ):
            return self._run_columnar_fast_pa
        if (
            type(policy) is OPGPolicy
            and not policy._next_of
            # the OPG loop inlines eviction without the pinned-block
            # make_room fallback, so the write policy must never pin
            and not self.write_policy.pins_blocks
        ):
            return self._run_columnar_fast_opg
        return None

    def _run_columnar_fast_pa(self, trace, times, disks, blocks_col, writes):
        """PA-LRU fused loop: batch-kernel plans + inlined PA/LRU state.

        Three facts make the classifier's hot work precomputable from
        the trace alone (see :mod:`repro.core.kernels`):

        * the Bloom filter's verdicts — a key's first access is always
          a miss and later ``check_and_add`` calls are state no-ops, so
          :func:`~repro.core.kernels.bloom_cold_mask` replays the whole
          filter up front with chunked batched hashing;
        * epoch rollover — boundaries depend only on the first/last
          timestamps, so per-access completed-epoch counts come from
          one ``searchsorted``;
        * the interval CDFs — per-epoch histograms are only *read* at
          epoch boundaries, so misses buffer their interval lengths and
          each boundary bins them with one vectorized histogram pass.

        Everything else (LRU stacks, `_home` map, `_classes`) is the
        policy's **live** state, mutated in place, so the generic
        fallbacks (``_make_room`` with pinned blocks, write-policy
        hooks) stay coherent mid-run; residual classifier state is
        written back after the loop. Bit-identity with the scalar path
        is pinned by the fused-path differential tests.
        """
        cache = self.cache
        policy: PowerAwarePolicy = self.policy
        classifier = policy.classifier
        bloom = classifier._bloom
        num_disks = classifier.num_disks

        # -- batch-kernel plans ------------------------------------------
        cold_plan, bloom_count, bloom_words = kernels.bloom_cold_mask(
            trace.disks, trace.blocks, bloom.num_bits, bloom.num_hashes
        )
        cold_l = cold_plan.tolist()
        boundaries = kernels.epoch_boundary_table(
            times[0], classifier.epoch_length_s, times[-1]
        )
        rolls_l = kernels.epoch_roll_counts(trace.times, boundaries).tolist()

        # -- live policy/classifier state (aliased, not copied) ----------
        classes = classifier._classes
        PRIORITY = DiskClass.PRIORITY
        REGULAR = DiskClass.REGULAR
        reg_pol = policy._regular
        pri_pol = policy._priority
        reg_stack = reg_pol._stack
        pri_stack = pri_pol._stack
        home = policy._home
        home_get = home.get
        miss_ct = [0] * num_disks
        cold_ct = [0] * num_disks
        buffers: list[list[float]] = [[] for _ in range(num_disks)]
        last_d = list(classifier._last_disk_access)
        edges = classifier._stats[0].histogram.edges
        alpha = classifier.alpha
        p_q = classifier.p
        threshold_t = classifier.threshold_t
        histogram_counts = kernels.histogram_counts
        histogram_quantile = kernels.histogram_quantile

        def reclassify() -> None:
            # DiskClassifier._reclassify with the buffered intervals
            # binned in one vectorized pass per disk.
            for d in range(num_disks):
                m = miss_ct[d]
                if m == 0:
                    classes[d] = PRIORITY
                    continue
                buf = buffers[d]
                total = len(buf)
                if total:
                    counts = histogram_counts(edges, buf)
                    x_p = histogram_quantile(edges, counts, total, p_q)
                    buffers[d] = []
                else:
                    x_p = inf
                classes[d] = (
                    PRIORITY
                    if cold_ct[d] / m <= alpha and x_p >= threshold_t
                    else REGULAR
                )
                miss_ct[d] = 0
                cold_ct[d] = 0
            classifier.epochs_completed += 1

        # -- engine locals (mirrors _run_columnar_fast) ------------------
        blocks = cache._blocks
        blocks_get = blocks.get
        blocks_pop = blocks.pop
        stats = cache.stats
        seen = stats._seen
        make_room = cache._make_room
        capacity = cache.capacity
        dirty_get = cache._dirty_by_disk.get
        write_policy = self.write_policy
        on_write = write_policy.on_write
        on_evicted = write_policy.on_evicted
        after_read_wake = (
            None
            if type(write_policy).after_read_wake
            is WritePolicy.after_read_wake
            else write_policy.after_read_wake
        )
        quick = [d.submit_quick for d in self.array.disks]
        hit_latency = self.config.cache_hit_latency_s
        append_response = self._responses.append
        block_state = BlockState
        disk_reads = 0
        n_acc = n_read = n_write = 0
        n_hit = n_miss = n_cold = 0
        n_evict = n_dirty_evict = 0
        rolls_done = 0

        time = 0.0
        for time, disk, block, is_write, cold_i, roll_i in zip(
            times, disks, blocks_col, writes, cold_l, rolls_l
        ):
            while rolls_done < roll_i:
                reclassify()
                rolls_done += 1
            key = (disk, block)
            n_acc += 1
            if is_write:
                n_write += 1
            else:
                n_read += 1
            worst = hit_latency
            state = blocks_get(key)
            if state is not None:
                n_hit += 1
                # PA.on_access(hit): classify, migrate-or-touch
                if classes[disk] is PRIORITY:
                    target = pri_pol
                    tstack = pri_stack
                else:
                    target = reg_pol
                    tstack = reg_stack
                current = home_get(key)
                if current is target:
                    tstack.move_to_end(key)
                else:
                    (pri_stack if current is pri_pol else reg_stack).pop(
                        key, None
                    )
                    tstack[key] = None
                    home[key] = target
                if is_write:
                    latency = on_write(key, time)
                    if latency > worst:
                        worst = latency
            else:
                n_miss += 1
                if key not in seen:
                    n_cold += 1
                    seen.add(key)
                # classifier.observe_miss with the precomputed verdict
                miss_ct[disk] += 1
                if cold_i:
                    cold_ct[disk] += 1
                last = last_d[disk]
                if last is not None:
                    gap = time - last
                    buffers[disk].append(gap if gap > 0.0 else 0.0)
                last_d[disk] = time
                if capacity is not None and len(blocks) >= capacity:
                    if (
                        cache._pinned == 0
                        and len(blocks) == capacity
                        and (reg_stack or pri_stack)
                    ):
                        # PA.evict inlined: drain regular first
                        if reg_stack:
                            victim = reg_stack.popitem(last=False)[0]
                        else:
                            victim = pri_stack.popitem(last=False)[0]
                        del home[victim]
                        vstate = blocks_pop(victim, None)
                        if vstate is None:
                            raise SimulationError(
                                "policy evicted non-resident block "
                                f"{victim}"
                            )
                        n_evict += 1
                        if vstate.dirty:
                            n_dirty_evict += 1
                            bucket = dirty_get(victim[0])
                            if bucket is not None:
                                bucket.discard(victim)
                        evicted = ((victim, vstate),)
                    else:
                        evicted = make_room(time)
                else:
                    evicted = ()
                blocks[key] = block_state()
                # PA.on_insert inlined (fresh key, not in _home)
                if classes[disk] is PRIORITY:
                    pri_stack[key] = None
                    home[key] = pri_pol
                else:
                    reg_stack[key] = None
                    home[key] = reg_pol
                if is_write:
                    for victim, vstate in evicted:
                        on_evicted(victim, vstate, time)
                    latency = on_write(key, time)
                    if latency > worst:
                        worst = latency
                else:
                    latency, wake_delay = quick[disk](time, block, False)
                    disk_reads += 1
                    if latency > worst:
                        worst = latency
                    for victim, vstate in evicted:
                        on_evicted(victim, vstate, time)
                    if after_read_wake is not None:
                        after_read_wake(disk, time, woke=wake_delay > 0)
            append_response(worst)

        # -- residual state write-back -----------------------------------
        bloom._words = bloom_words
        bloom._count = bloom_count
        stats_list = classifier._stats
        for d in range(num_disks):
            dstats = stats_list[d]
            dstats.misses = miss_ct[d]
            dstats.cold_misses = cold_ct[d]
            if buffers[d]:
                dstats.histogram.add_batch(buffers[d])
        classifier._last_disk_access = last_d
        classifier._epoch_end = float(boundaries[-1])
        stats.accesses += n_acc
        stats.read_accesses += n_read
        stats.write_accesses += n_write
        stats.hits += n_hit
        stats.misses += n_miss
        stats.cold_misses += n_cold
        stats.evictions += n_evict
        stats.dirty_evictions += n_dirty_evict
        self._disk_reads += disk_reads
        return time

    def _run_columnar_fast_opg(self, trace, times, disks, blocks_col, writes):
        """OPG fused loop: vectorized prepare plans + inlined heap ops.

        OPG's eviction order hinges on its stamped heap tuples, so no
        *algorithmic* change is possible without changing results; this
        loop keeps the scalar arithmetic and push discipline exactly
        (same stamps, same tuple values) and removes the interpretation
        overhead around it: ``_advance``'s per-access sequence check is
        skipped (the access stream IS the prepared columnar trace; each
        access's next-reference time rides along in the main ``zip``),
        untrack/track pairs are fused (one net ``+2`` stamp bump, one
        push), the push itself is inlined once into the main loop body
        (the ``push`` closure remains only for the gap splitter's
        re-pushes), the chunked-container operations (timeline neighbor
        lookup/insert, res add/discard/range-walk) are inlined against
        per-disk hoists of the two-level ``_chunks``/``_maxes``
        representation, and each penalty's three idle-energy evaluations
        collapse into
        one inline segment-table walk (the
        :meth:`~repro.power.dpm._SegmentTable.split_penalty` arithmetic
        with the table columns hoisted into closure locals) when the
        energy function is an unoverridden ``PracticalDPM.idle_energy``
        — plus a one-comparison shortcut for gaps inside the first
        residency segment, where all three lookups share segment 0 and
        no bisect is needed, and per-value first/last-segment lanes
        that replace the bisect with one or two float compares for the
        (measured-dominant) below-``bounds[0]`` / above-``bounds[-1]``
        distances. Misses never split the timeline: a cold miss's time
        was seeded during prepare, and a repeat miss occurs exactly at
        the recorded next-access time some earlier eviction already
        inserted — so the miss path carries no gap-split probe at all.
        When the write policy is exactly ``WriteBackPolicy`` (the class
        is fast-path audited), its three hooks are inlined: clean
        evictions skip the ``on_evicted`` call, dirty victims flush
        directly, and ``on_write`` becomes the ``mark_dirty`` update on
        the state object already in hand.

        The heap, ``_res`` lists and timelines are the policy's live
        objects; per-block next-time and stamp ride the cache's
        ``BlockState`` scratch slots (``opg_nt``/``opg_stamp``) so the
        hit path's residency probe is the only per-access dict lookup,
        and the ``_next_of``/``_stamp`` dicts are folded back from the
        surviving states when the loop exits. The fused-loop gate
        excludes pinning write policies, so no scalar policy call that
        could read the stale dicts (``_make_room`` → ``evict``) can
        interleave. Write-back activity notifications are rerouted from
        the scalar ``note_disk_activity`` straight to the fused gap
        splitter for the duration of the loop (it self-detects
        already-known times via its locating bisect) — same timeline
        inserts, same re-pushes, same stamps.
        ``_last_access`` is deliberately left unmaintained:
        its only consumer is ``on_insert``'s never-accessed guard, and
        every ``on_insert`` reachable from the fused loop is a
        pinned-victim re-insert that short-circuits on ``_next_of``.
        Differential tests pin bit-identity.
        """
        cache = self.cache
        policy: OPGPolicy = self.policy
        theta = policy.theta
        energy = policy._energy
        # Penalty fast paths, strictest first: with an exact
        # PracticalDPM the segment table is immutable for the whole run
        # (only adaptive subclasses rebuild it), so its columns can be
        # hoisted into locals; a subclass with the *unoverridden*
        # idle_energy still gets the fused 3-in-1 lookup, but through
        # split_penalty so rebuilds stay visible.
        from repro.power.dpm import PracticalDPM

        owner = getattr(energy, "__self__", None)
        plain_practical = (
            isinstance(owner, PracticalDPM)
            and getattr(energy, "__func__", None)
            is PracticalDPM.idle_energy
        )
        table = (
            owner._table
            if plain_practical and type(owner) is PracticalDPM
            else None
        )
        fast_split = (
            owner.split_penalty
            if plain_practical and table is None
            else None
        )
        if table is not None:
            bounds = table.bounds
            sh_ie = table.sh_ie_total
            res_prefix = table.res_prefix
            res_cursor = table.res_cursor
            res_power = table.res_power
            res_mode = table.res_mode
            res_spin = table.res_spinup_e
            b0 = bounds[0] if bounds else inf
            seg0_flat = res_mode[0] == 0
            prefix0 = res_prefix[0]
            cursor0 = res_cursor[0]
            power0 = res_power[0]
            spin0 = res_spin[0]
            # Pre-resolved first/last-segment constants: measured on
            # the benchmark workload, ~63% of leads and ~47% of
            # follows/wholes land below bounds[0] or above bounds[-1],
            # so one comparison replaces the bisect for them (the
            # residual middle still walks). bounds comes in
            # (sleep_start, next_resume) pairs, so a beyond-the-end
            # value's bisect index len(bounds) is even and resolves to
            # residency segment len(bounds)//2; an odd length would
            # break that (and IndexError in the generic walk), so the
            # shortcut is disabled (bN = inf) on malformed tables.
            nbounds = len(bounds)
            if nbounds and not nbounds & 1:
                bN = bounds[-1]
                jn = nbounds >> 1
                prefN = res_prefix[jn]
                curN = res_cursor[jn]
                powN = res_power[jn]
                modeN = res_mode[jn] != 0
                spinN = res_spin[jn]
            else:
                bN = inf
                prefN = curN = powN = spinN = 0.0
                modeN = False
        next_of = policy._next_of
        stamps = policy._stamp
        stamps_get = stamps.get
        heap = policy._heap
        # Every timeline shares the run's start/end and is pre-seeded
        # for each disk the trace touches (prepare/prepare_columnar),
        # and the per-disk ``_res`` chunked lists exist alongside them,
        # so the chunked two-level representation (``_chunks`` +
        # ``_maxes``, both mutated in place and never rebound) can be
        # hoisted into flat per-disk tables and the container operations
        # inlined below — same bisects on the same lists in the same
        # order as the methods, minus ~3M Python calls per million
        # requests. Disk ids are small contiguous ints, so the tables
        # are plain lists indexed by disk (cheaper than dict hashing on
        # the hot path; unseeded ids can't appear in the loop, their
        # slots stay None). Scalar fallbacks mutate the same aliased
        # lists; the inlined mutations skip only the containers' _len
        # counter (nothing in the loop reads it), restored in finally.
        timelines = policy._timelines
        res_lists = policy._res
        ndisks = max(timelines, default=-1) + 1
        tl_lists: list = [None] * ndisks
        tl_chunks: list = [None] * ndisks
        tl_maxes: list = [None] * ndisks
        res_chunks: list = [None] * ndisks
        res_maxes: list = [None] * ndisks
        cap = 0
        for d, tl in timelines.items():
            t = tl._times
            tl_lists[d] = t
            tl_chunks[d] = t._chunks
            tl_maxes[d] = t._maxes
            r = res_lists[d]
            res_chunks[d] = r._chunks
            res_maxes[d] = r._maxes
            # every container is built with the same default load
            cap = t._cap
            assert r._cap == cap
        tl_start = policy._start_time
        tl_end = policy._trace_end

        def push(disk: int, block: int, nt: float, stamp: int) -> None:
            # _push's tail: penalty at (disk, nt), then the heap tuple.
            if nt == inf:
                pen = 0.0
            else:
                # DiskTimeline.neighbors_tuple inlined (the timeline
                # always holds start, so its maxes index is never
                # empty). Coincidence — nt already a known access,
                # penalty zero — falls out of the same bisect that
                # finds the follower, so no separate hash probe. In
                # the append branch nt is beyond every known time; it
                # can at most equal the synthetic tl_end follower,
                # where the penalty is e(lead) + e(0) - e(lead) = 0
                # (energy_fn(0) == 0 contract), matching pen = 0.
                maxes = tl_maxes[disk]
                ci = bisect_left(maxes, nt)
                if ci == len(maxes):
                    leader = maxes[-1]
                    follower = tl_end
                else:
                    chunk = tl_chunks[disk][ci]
                    i = bisect_left(chunk, nt)
                    follower = chunk[i]
                    if i > 0:
                        leader = chunk[i - 1]
                    elif ci > 0:
                        leader = maxes[ci - 1]
                    else:
                        leader = tl_start
                if follower == nt:
                    pen = 0.0  # coincident: the disk is active anyway
                else:
                    lead = nt - leader
                    follow = follower - nt
                    if follow < 0.0:
                        follow = 0.0
                    if table is not None:
                        whole = lead + follow
                        if seg0_flat and whole <= b0:
                            # All three gaps land in residency segment
                            # 0 (rounding is monotone, so lead, follow
                            # <= fl(lead + follow)); these are the
                            # general walk's j == 0 expressions.
                            pen = (
                                (prefix0 + (lead - cursor0) * power0)
                                + (prefix0 + (follow - cursor0) * power0)
                                - (prefix0 + (whole - cursor0) * power0)
                            )
                        else:
                            # Per-value fast lanes around the bisect
                            # (ordered by measured frequency): below
                            # bounds[0] resolves to segment 0, above
                            # bounds[-1] to the last segment — both
                            # with the generic walk's exact j == 0 /
                            # j == len//2 expressions, so the floats
                            # match bit for bit.
                            if lead <= b0:
                                e_l = prefix0 + (lead - cursor0) * power0
                                if not seg0_flat:
                                    e_l = e_l + spin0
                            elif lead > bN:
                                e_l = prefN + (lead - curN) * powN
                                if modeN:
                                    e_l = e_l + spinN
                            else:
                                idx = bisect_left(bounds, lead)
                                if idx & 1 and bounds[idx] != lead:
                                    e_l = sh_ie[idx >> 1]
                                else:
                                    j = (
                                        (idx + 1) >> 1
                                        if idx & 1
                                        else idx >> 1
                                    )
                                    e_l = (
                                        res_prefix[j]
                                        + (lead - res_cursor[j])
                                        * res_power[j]
                                    )
                                    if res_mode[j] != 0:
                                        e_l = e_l + res_spin[j]
                            if follow > bN:
                                e_f = prefN + (follow - curN) * powN
                                if modeN:
                                    e_f = e_f + spinN
                            elif follow <= b0:
                                e_f = (
                                    prefix0 + (follow - cursor0) * power0
                                )
                                if not seg0_flat:
                                    e_f = e_f + spin0
                            else:
                                idx = bisect_left(bounds, follow)
                                if idx & 1 and bounds[idx] != follow:
                                    e_f = sh_ie[idx >> 1]
                                else:
                                    j = (
                                        (idx + 1) >> 1
                                        if idx & 1
                                        else idx >> 1
                                    )
                                    e_f = (
                                        res_prefix[j]
                                        + (follow - res_cursor[j])
                                        * res_power[j]
                                    )
                                    if res_mode[j] != 0:
                                        e_f = e_f + res_spin[j]
                            if whole > bN:
                                e_w = prefN + (whole - curN) * powN
                                if modeN:
                                    e_w = e_w + spinN
                            elif whole <= b0:
                                e_w = prefix0 + (whole - cursor0) * power0
                                if not seg0_flat:
                                    e_w = e_w + spin0
                            else:
                                idx = bisect_left(bounds, whole)
                                if idx & 1 and bounds[idx] != whole:
                                    e_w = sh_ie[idx >> 1]
                                else:
                                    j = (
                                        (idx + 1) >> 1
                                        if idx & 1
                                        else idx >> 1
                                    )
                                    e_w = (
                                        res_prefix[j]
                                        + (whole - res_cursor[j])
                                        * res_power[j]
                                    )
                                    if res_mode[j] != 0:
                                        e_w = e_w + res_spin[j]
                            pen = e_l + e_f - e_w
                        if pen <= 0.0:
                            pen = 0.0
                    elif fast_split is not None:
                        pen = fast_split(lead, follow)
                    else:
                        e_split = energy(lead) + energy(follow)
                        e_whole = energy(lead + follow)
                        pen = e_split - e_whole
                        if pen < 0.0:
                            pen = 0.0
            if pen < theta:
                pen = theta
            heappush(heap, (pen, -nt, stamp, disk, block))

        def split_gap(disk: int, at: float) -> None:
            # _split_gap with ChunkedSortedList.insert_unique and the
            # exclusive res irange inlined: one fused locate+insert on
            # the timeline, then a lazy forward walk over residents
            # strictly inside the split gap — start past (leader, inf),
            # stop at the first next-time >= follower (the bisect
            # identity for the (False, False) bounds; most gaps hold no
            # resident, so the walk usually ends at its first
            # comparison without locating the hi bound at all).
            # Already-known times fall out of the locating bisect
            # itself (follower == at), so callers and this body pay no
            # hash probe on the known set; the append branch needs no
            # check at all, since every known time is <= maxes[-1].
            # Nothing in the loop reads the timeline's _known mirror
            # either, so it is not maintained here — the finally
            # below rebuilds it from the chunks in one pass.
            maxes = tl_maxes[disk]
            chunks = tl_chunks[disk]
            ci = bisect_left(maxes, at)
            if ci == len(maxes):
                ci -= 1
                chunk = chunks[ci]
                leader = chunk[-1]
                chunk.append(at)
                maxes[ci] = at
                follower = tl_end
            else:
                chunk = chunks[ci]
                i = bisect_left(chunk, at)
                follower = chunk[i]
                if follower == at:
                    return  # already known; no penalties change
                if i > 0:
                    leader = chunk[i - 1]
                elif ci > 0:
                    leader = maxes[ci - 1]
                else:
                    leader = tl_start
                chunk.insert(i, at)
            if len(chunk) > cap:
                tl_lists[disk]._split(ci)
            rmaxes = res_maxes[disk]
            if not rmaxes:
                return
            lo = (leader, inf)
            ci = bisect_right(rmaxes, lo)
            if ci == len(rmaxes):
                return
            rchunks = res_chunks[disk]
            chunk = rchunks[ci]
            i = bisect_right(chunk, lo)
            while True:
                if i == len(chunk):
                    ci += 1
                    if ci == len(rchunks):
                        return
                    chunk = rchunks[ci]
                    i = 0
                    continue
                nt2, blk = chunk[i]
                if nt2 >= follower:
                    return
                # validate against the live state: evictions leave
                # their res entry in place (the victim's next time sits
                # strictly inside the very gap its eviction splits, so
                # this walk is what cleans it up — cheaper than a
                # separate locate-and-delete on the evict path)
                s2 = blocks_get((disk, blk))
                if s2 is None or s2.opg_nt != nt2:
                    del chunk[i]
                    if not chunk:
                        del rchunks[ci]
                        del rmaxes[ci]
                        if ci == len(rchunks):
                            return
                        chunk = rchunks[ci]
                        i = 0
                    elif i == len(chunk):
                        rmaxes[ci] = chunk[-1]
                    continue
                i += 1
                st2 = s2.opg_stamp + 1
                s2.opg_stamp = st2
                push(disk, blk, nt2, st2)

        # -- engine locals (mirrors _run_columnar_fast; no make_room —
        # the non-pinning write-policy gate makes the scalar fallback
        # unreachable, eviction is always the inline heap pop) -----------
        blocks = cache._blocks
        blocks_get = blocks.get
        stats = cache.stats
        seen = stats._seen
        capacity = cache.capacity
        cap_limit = inf if capacity is None else capacity
        dirty_get = cache._dirty_by_disk.get
        dirty_setdefault = cache._dirty_by_disk.setdefault
        write_policy = self.write_policy
        on_write = write_policy.on_write
        on_evicted = write_policy.on_evicted
        # WriteBackPolicy's hooks inlined under an exact-type gate (the
        # class is FAST_PATH_AUDITED): on_evicted is a dirty-bit check
        # in front of _write_to_disk, and on_write is cache.mark_dirty
        # returning 0.0 client latency. Mirroring both in the loop lets
        # the clean majority of evictions skip the call entirely.
        wb_exact = type(write_policy) is WriteBackPolicy
        wb_flush = write_policy._write_to_disk
        after_read_wake = (
            None
            if type(write_policy).after_read_wake
            is WritePolicy.after_read_wake
            else write_policy.after_read_wake
        )
        quick = [d.submit_quick for d in self.array.disks]
        hit_latency = self.config.cache_hit_latency_s
        append_response = self._responses.append
        block_state = BlockState
        disk_reads = 0
        # Totals the loop would accumulate one by one fall out of the
        # columns directly; only the cache-state-dependent counters
        # (misses, cold misses, evictions) stay in the loop.
        n_total = len(times)
        n_write_total = int(trace.is_write.sum())
        n_miss = n_cold = 0
        n_evict = n_dirty_evict = 0

        # Reroute write-back activity notifications (attach() bound the
        # scalar note_disk_activity) through the fused gap splitter;
        # restored below even on error.
        # The gap splitter doubles as the activity listener directly —
        # its signature matches, and it self-detects already-known
        # times — so flush notifications (mostly dirty victims landing
        # on a *different* disk whose timeline has not seen this
        # instant) pay no wrapper call.
        saved_listener = write_policy.activity_listener
        # With no observability probe wired, _write_to_disk reduces to
        # a per-disk submit, a counter bump, and the listener call —
        # which is split_gap itself for the loop's duration — so the
        # dirty-victim flush sites below submit directly and skip two
        # delegation frames per flush; the deferred counter is folded
        # back in the finally.
        wb_direct = (
            wb_exact
            and write_policy.probe is None
            and saved_listener is not None
        )
        wb_writes = 0
        # Residency count tracked as a local: loop code is the only
        # mutator of cache membership while the fused loop runs (write
        # policies flush/mark but never insert or remove), and every
        # eviction is immediately followed by an insert, so only the
        # below-capacity warmup inserts move it.
        nblocks = len(blocks)

        time = 0.0
        try:
            # the swap sits inside the try so the finally's restore is
            # reached from every statement that runs with it in place
            if saved_listener is not None:
                write_policy.activity_listener = split_gap
            for time, disk, block, is_write, nt_new in zip(
                times, disks, blocks_col, writes, policy._next_time
            ):
                key = (disk, block)
                worst = hit_latency
                state = blocks_get(key)
                if state is not None:
                    # on_access(hit): fused untrack + track (+2 stamp,
                    # one push — same final stamp and tuple as the
                    # scalar pair), with next-time and stamp read off
                    # the state object the residency probe already
                    # fetched instead of the policy dicts (rebuilt in
                    # the finally below)
                    nt_old = state.opg_nt
                    state.opg_nt = nt_new
                    # res discard + add inlined (resident finite-nt
                    # blocks are always tracked, so the discarded item
                    # exists; nt_old is this access's own time, hence
                    # finite — the guard mirrors _untrack's). Infinite
                    # next times stay out of res entirely: a gap walk's
                    # follower bound is always finite. The item is
                    # (almost) always the res front: every live entry
                    # is a pending future access >= now == nt_old, and
                    # anything ordered below it is a provably-stale
                    # leftover of a lazy eviction — purge those
                    # wholesale, then pop the front without a bisect.
                    rmaxes = res_maxes[disk]
                    rchunks = res_chunks[disk]
                    if nt_old != inf:
                        item = (nt_old, block)
                        chunk = rchunks[0]
                        while chunk[-1][0] < nt_old:
                            del rchunks[0]
                            del rmaxes[0]
                            chunk = rchunks[0]
                        if chunk[0][0] < nt_old:
                            del chunk[: bisect_left(chunk, (nt_old, -1))]
                        if chunk[0] == item:
                            del chunk[0]
                            if not chunk:
                                del rchunks[0]
                                del rmaxes[0]
                        else:
                            # coincident timestamps: locate exactly
                            ci = bisect_left(rmaxes, item)
                            chunk = rchunks[ci]
                            i = bisect_left(chunk, item)
                            del chunk[i]
                            if not chunk:
                                del rchunks[ci]
                                del rmaxes[ci]
                            elif i == len(chunk):
                                rmaxes[ci] = chunk[-1]
                    if nt_new != inf:
                        item = (nt_new, block)
                        if not rmaxes:
                            rchunks.append([item])
                            rmaxes.append(item)
                        else:
                            ci = bisect_right(rmaxes, item)
                            if ci == len(rmaxes):
                                ci -= 1
                                chunk = rchunks[ci]
                                chunk.append(item)
                                rmaxes[ci] = item
                            else:
                                chunk = rchunks[ci]
                                insort(chunk, item)
                            if len(chunk) > cap:
                                res_lists[disk]._split(ci)
                    st = state.opg_stamp + 2
                    state.opg_stamp = st
                    bstate = state
                    vkey = None
                else:
                    n_miss += 1
                    if key not in seen:
                        n_cold += 1
                        seen.add(key)
                    # on_access(miss) performs no timeline split here:
                    # every miss lands on an already-known time — cold
                    # misses are seeded by prepare, and a repeat miss
                    # IS its block's recorded next-access time,
                    # inserted the moment that block was evicted — so
                    # the scalar path's split_gap is always the
                    # already-known no-op (the differential suite and
                    # the non-pinning gate keep the invariant honest).
                    vkey = None
                    if nblocks >= cap_limit:
                        # OPG.evict inlined (lazy heap, fused untrack).
                        # A heap entry is live iff its block is
                        # resident AND its stamp is the block's current
                        # one — the same acceptance set as the scalar
                        # stamps/_next_of test, since untracked keys
                        # always carry a bumped stamp no entry matches.
                        while heap:
                            pen, neg_nt, st, vd, vb = heappop(heap)
                            vkey = (vd, vb)
                            vstate = blocks_get(vkey)
                            if vstate is None or vstate.opg_stamp != st:
                                continue
                            del blocks[vkey]
                            nt_v = vstate.opg_nt
                            # no eager res discard: the victim's entry
                            # sits strictly inside the gap split below,
                            # whose walk drops it (now stale) in place
                            # — the untrack stamp bump outlives the
                            # eviction (a re-insert continues the
                            # sequence), so it goes to the dict, not
                            # the dying state
                            stamps[vkey] = st + 1
                            if nt_v != inf:
                                split_gap(vd, nt_v)
                            break
                        else:
                            raise PolicyError(
                                "OPG: evict with no resident blocks"
                            )
                        n_evict += 1
                        vdirty = vstate.dirty
                        if vdirty:
                            n_dirty_evict += 1
                            bucket = dirty_get(vd)
                            if bucket is not None:
                                bucket.discard(vkey)
                    else:
                        nblocks += 1
                    # on_insert inlined: track at this access's next
                    # time (prepare seeded res for every traced disk;
                    # inf next times stay out of res). A re-inserted
                    # block resumes its stamp sequence from the dict
                    # entry its last eviction left behind.
                    st = stamps_get(key, 0) + 1
                    if vkey is not None and wb_exact:
                        # recycle the victim's state object: its dirty
                        # bit is captured above and inlined write-back
                        # reads nothing else from it, so the fields can
                        # be reset in place — a full-cache workload
                        # otherwise allocates one BlockState per miss
                        bstate = vstate
                        bstate.dirty = False
                        bstate.logged = False
                        bstate.prefetched = False
                        bstate.opg_nt = nt_new
                        bstate.opg_stamp = st
                    else:
                        bstate = block_state(False, False, False, nt_new, st)
                    blocks[key] = bstate
                    if nt_new != inf:
                        rmaxes = res_maxes[disk]
                        item = (nt_new, block)
                        if not rmaxes:
                            res_chunks[disk].append([item])
                            rmaxes.append(item)
                        else:
                            ci = bisect_right(rmaxes, item)
                            if ci == len(rmaxes):
                                ci -= 1
                                chunk = res_chunks[disk][ci]
                                chunk.append(item)
                                rmaxes[ci] = item
                            else:
                                chunk = res_chunks[disk][ci]
                                insort(chunk, item)
                            if len(chunk) > cap:
                                res_lists[disk]._split(ci)
                # -- push(disk, block, nt_new, st) inlined: hit and
                # miss funnel through this single copy (the closure
                # above still serves the gap-split walk), trading one
                # closure call per access for the shared tail below --------
                if nt_new == inf:
                    pen = 0.0
                else:
                    maxes = tl_maxes[disk]
                    ci = bisect_left(maxes, nt_new)
                    if ci == len(maxes):
                        leader = maxes[-1]
                        follower = tl_end
                    else:
                        chunk = tl_chunks[disk][ci]
                        i = bisect_left(chunk, nt_new)
                        follower = chunk[i]
                        if i > 0:
                            leader = chunk[i - 1]
                        elif ci > 0:
                            leader = maxes[ci - 1]
                        else:
                            leader = tl_start
                    if follower == nt_new:
                        pen = 0.0  # coincident: disk active anyway
                    else:
                        lead = nt_new - leader
                        follow = follower - nt_new
                        if follow < 0.0:
                            follow = 0.0
                        if table is not None:
                            whole = lead + follow
                            if seg0_flat and whole <= b0:
                                pen = (
                                    (prefix0 + (lead - cursor0) * power0)
                                    + (
                                        prefix0
                                        + (follow - cursor0) * power0
                                    )
                                    - (
                                        prefix0
                                        + (whole - cursor0) * power0
                                    )
                                )
                            else:
                                if lead <= b0:
                                    e_l = (
                                        prefix0 + (lead - cursor0) * power0
                                    )
                                    if not seg0_flat:
                                        e_l = e_l + spin0
                                elif lead > bN:
                                    e_l = prefN + (lead - curN) * powN
                                    if modeN:
                                        e_l = e_l + spinN
                                else:
                                    idx = bisect_left(bounds, lead)
                                    if idx & 1 and bounds[idx] != lead:
                                        e_l = sh_ie[idx >> 1]
                                    else:
                                        j = (
                                            (idx + 1) >> 1
                                            if idx & 1
                                            else idx >> 1
                                        )
                                        e_l = (
                                            res_prefix[j]
                                            + (lead - res_cursor[j])
                                            * res_power[j]
                                        )
                                        if res_mode[j] != 0:
                                            e_l = e_l + res_spin[j]
                                if follow > bN:
                                    e_f = prefN + (follow - curN) * powN
                                    if modeN:
                                        e_f = e_f + spinN
                                elif follow <= b0:
                                    e_f = (
                                        prefix0
                                        + (follow - cursor0) * power0
                                    )
                                    if not seg0_flat:
                                        e_f = e_f + spin0
                                else:
                                    idx = bisect_left(bounds, follow)
                                    if idx & 1 and bounds[idx] != follow:
                                        e_f = sh_ie[idx >> 1]
                                    else:
                                        j = (
                                            (idx + 1) >> 1
                                            if idx & 1
                                            else idx >> 1
                                        )
                                        e_f = (
                                            res_prefix[j]
                                            + (follow - res_cursor[j])
                                            * res_power[j]
                                        )
                                        if res_mode[j] != 0:
                                            e_f = e_f + res_spin[j]
                                if whole > bN:
                                    e_w = prefN + (whole - curN) * powN
                                    if modeN:
                                        e_w = e_w + spinN
                                elif whole <= b0:
                                    e_w = (
                                        prefix0
                                        + (whole - cursor0) * power0
                                    )
                                    if not seg0_flat:
                                        e_w = e_w + spin0
                                else:
                                    idx = bisect_left(bounds, whole)
                                    if idx & 1 and bounds[idx] != whole:
                                        e_w = sh_ie[idx >> 1]
                                    else:
                                        j = (
                                            (idx + 1) >> 1
                                            if idx & 1
                                            else idx >> 1
                                        )
                                        e_w = (
                                            res_prefix[j]
                                            + (whole - res_cursor[j])
                                            * res_power[j]
                                        )
                                        if res_mode[j] != 0:
                                            e_w = e_w + res_spin[j]
                                pen = e_l + e_f - e_w
                            if pen <= 0.0:
                                pen = 0.0
                        elif fast_split is not None:
                            pen = fast_split(lead, follow)
                        else:
                            e_split = energy(lead) + energy(follow)
                            e_whole = energy(lead + follow)
                            pen = e_split - e_whole
                            if pen < 0.0:
                                pen = 0.0
                if pen < theta:
                    pen = theta
                heappush(heap, (pen, -nt_new, st, disk, block))
                # -- write/read tails; call order is identical to the
                # scalar engine's (victim flush first, then the
                # access's own write or read) ------------------------------
                if is_write:
                    if wb_exact:
                        if vkey is not None and vdirty:
                            if wb_direct:
                                quick[vd](time, vb, True)
                                wb_writes += 1
                                split_gap(vd, time)
                            else:
                                wb_flush(vkey, time)
                        # cache.mark_dirty(key) on the state in hand
                        # (setdefault would allocate its default set on
                        # every call; probe first, the bucket almost
                        # always exists)
                        if not (bstate.dirty or bstate.logged):
                            bucket = dirty_get(disk)
                            if bucket is None:
                                dirty_setdefault(disk, set()).add(key)
                            else:
                                bucket.add(key)
                        bstate.dirty = True
                    else:
                        if vkey is not None:
                            on_evicted(vkey, vstate, time)
                        latency = on_write(key, time)
                        if latency > worst:
                            worst = latency
                elif state is None:
                    latency, wake_delay = quick[disk](time, block, False)
                    disk_reads += 1
                    if latency > worst:
                        worst = latency
                    if vkey is not None:
                        if wb_exact:
                            if vdirty:
                                if wb_direct:
                                    quick[vd](time, vb, True)
                                    wb_writes += 1
                                    split_gap(vd, time)
                                else:
                                    wb_flush(vkey, time)
                        else:
                            on_evicted(vkey, vstate, time)
                    if after_read_wake is not None:
                        after_read_wake(disk, time, woke=wake_delay > 0)
                append_response(worst)
        finally:
            if saved_listener is not None:
                write_policy.activity_listener = saved_listener
            write_policy.disk_writes += wb_writes
            # the inlined timeline mutations bypass the containers'
            # _len bookkeeping and the _known hash mirror (no loop
            # code reads either); restore both invariants before
            # handing the structures back
            for tl in timelines.values():
                t = tl._times
                t._len = sum(map(len, t._chunks))
                tl._known = set().union(*t._chunks)
            # the loop never discards res entries eagerly (gap walks
            # drop stale ones in place), so rebuild each disk's
            # resident list exactly from the surviving block states —
            # the same logical sequence the scalar path maintains
            # eagerly; chunk layout is not observable through the
            # container API
            fresh: dict[int, list] = {d: [] for d in res_lists}
            for (d, b), s in blocks.items():
                if s.opg_nt != inf:
                    fresh[d].append((s.opg_nt, b))
            for d, items in fresh.items():
                items.sort()
                res_lists[d] = ChunkedSortedList.from_sorted(items)
            # per-block next-time/stamp lived on the BlockState scratch
            # slots during the loop; fold them back into the policy
            # dicts so post-run callers (scalar on_remove/evict, a
            # later incremental batch) see exactly the scalar-path
            # state. Evicted blocks' stamps are already in the dict.
            for k, s in blocks.items():
                next_of[k] = s.opg_nt
                stamps[k] = s.opg_stamp

        policy._cursor = n_total
        stats.accesses += n_total
        stats.read_accesses += n_total - n_write_total
        stats.write_accesses += n_write_total
        stats.hits += n_total - n_miss
        stats.misses += n_miss
        stats.cold_misses += n_cold
        stats.evictions += n_evict
        stats.dirty_evictions += n_dirty_evict
        self._disk_reads += disk_reads
        return time

    def handle_request(self, req: IORequest) -> float:
        """Process one request through cache, write policy, and disks.

        Returns the client-visible response time (also accumulated for
        the final report). Callers must supply requests in
        non-decreasing time order — the trace loop and the closed-loop
        driver both guarantee it.
        """
        cache = self.cache
        write_policy = self.write_policy
        hit_latency = self.config.cache_hit_latency_s
        worst = hit_latency
        for key in req.block_keys():
            outcome = cache.access(key, req.time, req.is_write)
            latency = hit_latency
            if req.is_write:
                for victim, state in outcome.evicted:
                    write_policy.on_evicted(victim, state, req.time)
                latency = max(latency, write_policy.on_write(key, req.time))
            elif not outcome.hit:
                response = self.array.submit(
                    req.disk, req.time, key[1], 1, is_write=False
                )
                self._disk_reads += 1
                latency = max(latency, response.response_time_s)
                for victim, state in outcome.evicted:
                    write_policy.on_evicted(victim, state, req.time)
                write_policy.after_read_wake(
                    req.disk, req.time, woke=response.wake_delay_s > 0
                )
                if self.prefetcher is not None:
                    self._prefetch(
                        key, response.wake_delay_s > 0, req.time
                    )
            if latency > worst:
                worst = latency
        self._responses.append(worst)
        if self.probe is not None:
            self.probe(
                RequestComplete(
                    req.time, req.disk, worst, req.is_write, req.nblocks
                )
            )
        return worst

    def finish(self, end_time: float) -> SimulationResult:
        """Wind the disks down to ``end_time`` and build the report."""
        self.array.finalize(end_time)
        return self._build_result(self._responses, self._disk_reads, end_time)

    def _prefetch(self, key, woke: bool, time: float) -> None:
        """Ride a demand read's disk activation with sequential blocks.

        The prefetch transfer queues behind the demand read (it cannot
        delay it) and its service time/energy are charged to the disk;
        admitted blocks may evict, and evicted dirty blocks are
        persisted by the write policy as usual.
        """
        disk_id = key[0]
        disk = self.array[disk_id]
        plan = self.prefetcher.plan(
            key,
            woke_disk=woke,
            time=time,
            cache=self.cache,
            disk_blocks=disk.geometry.num_blocks,
        )
        if not plan:
            return
        self.array.submit(disk_id, time, plan[0][1], len(plan))
        for pkey in plan:
            outcome = self.cache.admit(pkey, time)
            for victim, state in outcome.evicted:
                self.write_policy.on_evicted(victim, state, time)

    def _build_result(
        self, responses: list[float], disk_reads: int, end_time: float
    ) -> SimulationResult:
        stats = self.cache.stats
        disks = [
            DiskReport(
                disk_id=d.disk_id,
                account=d.account,
                mean_interarrival_s=d.mean_interarrival_s,
                requests=d.request_count,
            )
            for d in self.array.disks
        ]
        total = self.array.total_account()
        log_energy = 0.0
        if isinstance(self.write_policy, WTDUPolicy):
            log_energy = self.write_policy.extra_energy_j
        return SimulationResult(
            label=self.label,
            dpm=self.config.dpm,
            duration_s=end_time,
            disk_energy_j=self.array.total_energy_j,
            log_energy_j=log_energy,
            disks=disks,
            response=ResponseStats.from_samples(responses),
            cache_accesses=stats.accesses,
            cache_hits=stats.hits,
            cache_misses=stats.misses,
            cold_misses=stats.cold_misses,
            evictions=stats.evictions,
            disk_reads=disk_reads,
            disk_writes=self.write_policy.disk_writes,
            spinups=total.spinups,
            spindowns=total.spindowns,
            pending_dirty=self.write_policy.pending_dirty(),
            prefetch_admissions=stats.prefetch_admissions,
            prefetch_hits=stats.prefetch_hits,
        )
