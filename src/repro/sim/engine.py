"""The full-system simulation engine.

Processes a trace chronologically. Per block access:

* **read hit** — cache latency only.
* **read miss** — a disk read at the request's arrival time (paying any
  spin-up), then insertion; evicted dirty blocks are persisted by the
  write policy at the same instant (queued behind the read, so the
  demand read is not delayed by writeback traffic); WBEU/WTDU get the
  ``after_read_wake`` hook to piggyback flushes on the spin-up.
* **write** — write-allocate into the cache, then the write policy
  decides what (if anything) hits the disk or the log device and what
  latency the client observes.

The per-request response time is the slowest of its block accesses.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.cache import StorageCache
from repro.cache.policies.base import OfflinePolicy, ReplacementPolicy
from repro.cache.write.base import WritePolicy
from repro.cache.write.write_back import WriteBackPolicy
from repro.cache.write.wtdu import WTDUPolicy
from repro.core.prefetch import Prefetcher
from repro.disk.array import DiskArray
from repro.disk.disk import SimulatedDisk
from repro.disk.multispeed import AllSpeedServiceDisk
from repro.errors import ConfigurationError, TraceError
from repro.observe.events import RequestComplete, SimulationStart
from repro.power.specs import build_power_model
from repro.sim.config import SimulationConfig
from repro.sim.results import DiskReport, ResponseStats, SimulationResult
from repro.traces.record import IORequest, expand_accesses


class StorageSimulator:
    """One complete simulation run.

    Args:
        trace: Time-ordered requests.
        config: Array/cache/DPM configuration.
        policy: Replacement policy instance (offline policies are
            prepared automatically from the trace).
        write_policy: Write policy; defaults to write-back (the usual
            configuration for a large non-volatile storage cache, and
            the paper's setting for the replacement study).
        label: Report label; defaults to the policy names.
        probe: Optional event hook — any callable taking one
            :class:`~repro.observe.events.Event` (usually an
            :class:`~repro.observe.bus.EventBus`). ``None`` (default)
            disables tracing at near-zero cost.
    """

    def __init__(
        self,
        trace: Sequence[IORequest],
        config: SimulationConfig,
        policy: ReplacementPolicy,
        write_policy: WritePolicy | None = None,
        prefetcher: Prefetcher | None = None,
        label: str | None = None,
        probe=None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.policy = policy
        self.probe = probe
        self.write_policy = write_policy or WriteBackPolicy()
        if prefetcher is not None and isinstance(policy, OfflinePolicy):
            raise ConfigurationError(
                "prefetching admits blocks outside the demand sequence, "
                "which offline policies cannot model; use an online policy"
            )
        self.prefetcher = prefetcher
        self.label = label or f"{policy.name}+{self.write_policy.name}"
        self.power_model = build_power_model(config.spec, config.nap_rpms)
        disk_cls = (
            AllSpeedServiceDisk
            if config.disk_design == "all-speed"
            else SimulatedDisk
        )
        self.array = DiskArray(
            num_disks=config.num_disks,
            spec=config.spec,
            dpm_factory=lambda model: config.make_dpm(model),
            power_model=self.power_model,
            block_size=config.block_size,
            disk_cls=disk_cls,
            probe=probe,
        )
        self.cache = StorageCache(
            config.cache_capacity_blocks, policy, probe=probe
        )
        self.write_policy.attach(
            self.cache, self.array, activity_listener=policy.note_disk_activity
        )
        self.write_policy.set_probe(probe)
        classifier = getattr(policy, "classifier", None)
        if classifier is not None:
            classifier.probe = probe
        self._responses: list[float] = []
        self._disk_reads = 0
        self._ran = False

    def run(self) -> SimulationResult:
        """Execute the simulation; may be called once per instance."""
        if self._ran:
            raise TraceError("simulator instances are single-use")
        self._ran = True
        if isinstance(self.policy, OfflinePolicy):
            self.policy.prepare(expand_accesses(self.trace))
        if self.probe is not None:
            start = self.trace[0].time if len(self.trace) else 0.0
            self.probe(
                SimulationStart(
                    start,
                    self.config.num_disks,
                    self.config.cache_capacity_blocks,
                    self.config.disk_design,
                    self.label,
                    num_modes=len(self.power_model),
                )
            )

        previous_time = -1.0
        last_time = 0.0
        for req in self.trace:
            if req.time < previous_time:
                raise TraceError(
                    f"trace not time-ordered at t={req.time} (< {previous_time})"
                )
            previous_time = last_time = req.time
            self.handle_request(req)

        end_time = last_time + self.config.trace_tail_s
        return self.finish(end_time)

    def handle_request(self, req: IORequest) -> float:
        """Process one request through cache, write policy, and disks.

        Returns the client-visible response time (also accumulated for
        the final report). Callers must supply requests in
        non-decreasing time order — the trace loop and the closed-loop
        driver both guarantee it.
        """
        cache = self.cache
        write_policy = self.write_policy
        hit_latency = self.config.cache_hit_latency_s
        worst = hit_latency
        for key in req.block_keys():
            outcome = cache.access(key, req.time, req.is_write)
            latency = hit_latency
            if req.is_write:
                for victim, state in outcome.evicted:
                    write_policy.on_evicted(victim, state, req.time)
                latency = max(latency, write_policy.on_write(key, req.time))
            elif not outcome.hit:
                response = self.array.submit(
                    req.disk, req.time, key[1], 1, is_write=False
                )
                self._disk_reads += 1
                latency = max(latency, response.response_time_s)
                for victim, state in outcome.evicted:
                    write_policy.on_evicted(victim, state, req.time)
                write_policy.after_read_wake(
                    req.disk, req.time, woke=response.wake_delay_s > 0
                )
                if self.prefetcher is not None:
                    self._prefetch(key, response, req.time)
            if latency > worst:
                worst = latency
        self._responses.append(worst)
        if self.probe is not None:
            self.probe(
                RequestComplete(
                    req.time, req.disk, worst, req.is_write, req.nblocks
                )
            )
        return worst

    def finish(self, end_time: float) -> SimulationResult:
        """Wind the disks down to ``end_time`` and build the report."""
        self.array.finalize(end_time)
        return self._build_result(self._responses, self._disk_reads, end_time)

    def _prefetch(self, key, response, time: float) -> None:
        """Ride a demand read's disk activation with sequential blocks.

        The prefetch transfer queues behind the demand read (it cannot
        delay it) and its service time/energy are charged to the disk;
        admitted blocks may evict, and evicted dirty blocks are
        persisted by the write policy as usual.
        """
        disk_id = key[0]
        disk = self.array[disk_id]
        plan = self.prefetcher.plan(
            key,
            woke_disk=response.wake_delay_s > 0,
            time=time,
            cache=self.cache,
            disk_blocks=disk.geometry.num_blocks,
        )
        if not plan:
            return
        self.array.submit(disk_id, time, plan[0][1], len(plan))
        for pkey in plan:
            outcome = self.cache.admit(pkey, time)
            for victim, state in outcome.evicted:
                self.write_policy.on_evicted(victim, state, time)

    def _build_result(
        self, responses: list[float], disk_reads: int, end_time: float
    ) -> SimulationResult:
        stats = self.cache.stats
        disks = [
            DiskReport(
                disk_id=d.disk_id,
                account=d.account,
                mean_interarrival_s=d.mean_interarrival_s,
                requests=d.request_count,
            )
            for d in self.array.disks
        ]
        total = self.array.total_account()
        log_energy = 0.0
        if isinstance(self.write_policy, WTDUPolicy):
            log_energy = self.write_policy.extra_energy_j
        return SimulationResult(
            label=self.label,
            dpm=self.config.dpm,
            duration_s=end_time,
            disk_energy_j=self.array.total_energy_j,
            log_energy_j=log_energy,
            disks=disks,
            response=ResponseStats.from_samples(responses),
            cache_accesses=stats.accesses,
            cache_hits=stats.hits,
            cache_misses=stats.misses,
            cold_misses=stats.cold_misses,
            evictions=stats.evictions,
            disk_reads=disk_reads,
            disk_writes=self.write_policy.disk_writes,
            spinups=total.spinups,
            spindowns=total.spindowns,
            pending_dirty=self.write_policy.pending_dirty(),
            prefetch_admissions=stats.prefetch_admissions,
            prefetch_hits=stats.prefetch_hits,
        )
