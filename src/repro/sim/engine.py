"""The full-system simulation engine.

Processes a trace chronologically. Per block access:

* **read hit** — cache latency only.
* **read miss** — a disk read at the request's arrival time (paying any
  spin-up), then insertion; evicted dirty blocks are persisted by the
  write policy at the same instant (queued behind the read, so the
  demand read is not delayed by writeback traffic); WBEU/WTDU get the
  ``after_read_wake`` hook to piggyback flushes on the spin-up.
* **write** — write-allocate into the cache, then the write policy
  decides what (if anything) hits the disk or the log device and what
  latency the client observes.

The per-request response time is the slowest of its block accesses.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.block import BlockState
from repro.cache.cache import StorageCache
from repro.cache.policies.base import OfflinePolicy, ReplacementPolicy
from repro.cache.write.base import WritePolicy
from repro.cache.write.write_back import WriteBackPolicy
from repro.cache.write.wtdu import WTDUPolicy
from repro.core.prefetch import Prefetcher
from repro.disk.array import DiskArray
from repro.disk.disk import SimulatedDisk
from repro.disk.multispeed import AllSpeedServiceDisk
from repro.errors import ConfigurationError, SimulationError, TraceError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.observe.events import RequestComplete, SimulationStart
from repro.power.specs import build_power_model
from repro.sim.config import SimulationConfig
from repro.sim.results import DiskReport, ResponseStats, SimulationResult
from repro.traces.columnar import ColumnarTrace
from repro.traces.record import IORequest, iter_accesses

#: Fast-path audit registry, enforced statically by ``repro check``'s
#: ``fastpath`` rule: every concrete subclass of the gated base classes
#: found anywhere in ``src/repro`` must be listed here. Listing a class
#: asserts it has been audited for bit-identity between the inlined
#: fast paths (``_run_columnar_fast`` below, ``SimulatedDisk.
#: submit_quick``, the memoized DPM tables) and the polymorphic loop —
#: i.e. the columnar/legacy equivalence tests and ``repro bench
#: --check`` cover it. When you add a subclass, run those, then add its
#: name; the checker fails the build until you do.
FAST_PATH_AUDITED: dict[str, frozenset[str]] = {
    "ReplacementPolicy": frozenset(
        {
            # Abstract intermediate (prepare() contract only).
            "OfflinePolicy",
            "LRUPolicy",
            "FIFOPolicy",
            "ClockPolicy",
            "ARCPolicy",
            "MQPolicy",
            "LIRSPolicy",
            "BeladyPolicy",
            "OPGPolicy",
            "PowerAwarePolicy",
        }
    ),
    "WritePolicy": frozenset(
        {
            "WriteBackPolicy",
            "WriteThroughPolicy",
            "WBEUPolicy",
            "WTDUPolicy",
            "PeriodicFlushPolicy",
        }
    ),
    "DiskPowerManager": frozenset(
        {
            "AlwaysOnDPM",
            "OracleDPM",
            "PracticalDPM",
            "AdaptiveThresholdDPM",
        }
    ),
}


class StorageSimulator:
    """One complete simulation run.

    Args:
        trace: Time-ordered requests.
        config: Array/cache/DPM configuration.
        policy: Replacement policy instance (offline policies are
            prepared automatically from the trace).
        write_policy: Write policy; defaults to write-back (the usual
            configuration for a large non-volatile storage cache, and
            the paper's setting for the replacement study).
        label: Report label; defaults to the policy names.
        probe: Optional event hook — any callable taking one
            :class:`~repro.observe.events.Event` (usually an
            :class:`~repro.observe.bus.EventBus`). ``None`` (default)
            disables tracing at near-zero cost.
        fault_plan: Optional :class:`~repro.faults.plan.FaultPlan`; when
            it arms disk faults a seeded
            :class:`~repro.faults.injector.FaultInjector` is built and
            shared by every disk. Crash points are the crash harness's
            job (:mod:`repro.faults.harness`), not the engine's.
    """

    def __init__(
        self,
        trace: Sequence[IORequest],
        config: SimulationConfig,
        policy: ReplacementPolicy,
        write_policy: WritePolicy | None = None,
        prefetcher: Prefetcher | None = None,
        label: str | None = None,
        probe=None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.policy = policy
        self.probe = probe
        self.fault_injector = (
            FaultInjector(fault_plan, probe=probe)
            if fault_plan is not None and fault_plan.injects_disk_faults
            else None
        )
        self.write_policy = write_policy or WriteBackPolicy()
        if prefetcher is not None and isinstance(policy, OfflinePolicy):
            raise ConfigurationError(
                "prefetching admits blocks outside the demand sequence, "
                "which offline policies cannot model; use an online policy"
            )
        self.prefetcher = prefetcher
        self.label = label or f"{policy.name}+{self.write_policy.name}"
        self.power_model = build_power_model(config.spec, config.nap_rpms)
        disk_cls = (
            AllSpeedServiceDisk
            if config.disk_design == "all-speed"
            else SimulatedDisk
        )
        self.array = DiskArray(
            num_disks=config.num_disks,
            spec=config.spec,
            dpm_factory=lambda model: config.make_dpm(model),
            power_model=self.power_model,
            block_size=config.block_size,
            disk_cls=disk_cls,
            probe=probe,
            fault_injector=self.fault_injector,
        )
        self.cache = StorageCache(
            config.cache_capacity_blocks, policy, probe=probe
        )
        # Skip the listener indirection entirely for policies that
        # inherit the no-op hook (everything but the power-aware ones).
        listener = (
            None
            if type(policy).note_disk_activity
            is ReplacementPolicy.note_disk_activity
            else policy.note_disk_activity
        )
        self.write_policy.attach(
            self.cache, self.array, activity_listener=listener
        )
        self.write_policy.set_probe(probe)
        classifier = getattr(policy, "classifier", None)
        if classifier is not None:
            classifier.probe = probe
        self._responses: list[float] = []
        self._disk_reads = 0
        self._ran = False

    def prepare_offline(self) -> None:
        """Prepare an offline policy from the constructor trace.

        No-op for online policies. Called by :meth:`run`; incremental
        drivers (:class:`~repro.sim.session.SimulationSession`, the
        crash harness) that bypass :meth:`run` but still know the whole
        trace up front may call it directly before feeding.
        """
        if isinstance(self.policy, OfflinePolicy):
            accesses = (
                self.trace.iter_accesses()
                if isinstance(self.trace, ColumnarTrace)
                else iter_accesses(self.trace)
            )
            self.policy.prepare(accesses)

    def run(self) -> SimulationResult:
        """Execute the simulation; may be called once per instance.

        This is the batch drive style; :meth:`handle_request` +
        :meth:`finish` (wrapped by
        :class:`~repro.sim.session.SimulationSession`) is the
        incremental one. Both produce identical results for identical
        request streams — the differential tests pin it.
        """
        if self._ran:
            raise TraceError("simulator instances are single-use")
        self._ran = True
        columnar = isinstance(self.trace, ColumnarTrace)
        self.prepare_offline()
        if self.probe is not None:
            start = self.trace[0].time if len(self.trace) else 0.0
            self.probe(
                SimulationStart(
                    start,
                    self.config.num_disks,
                    self.config.cache_capacity_blocks,
                    self.config.disk_design,
                    self.label,
                    num_modes=len(self.power_model),
                )
            )

        if columnar:
            last_time = self._run_columnar()
        else:
            previous_time = -1.0
            last_time = 0.0
            handle_request = self.handle_request
            for req in self.trace:
                if req.time < previous_time:
                    raise TraceError(
                        f"trace not time-ordered at t={req.time} "
                        f"(< {previous_time})"
                    )
                previous_time = last_time = req.time
                handle_request(req)

        end_time = last_time + self.config.trace_tail_s
        return self.finish(end_time)

    def _run_columnar(self) -> float:
        """The columnar hot loop; returns the last request time.

        Mirrors :meth:`handle_request` exactly — same calls into the
        cache, write policy, and disk array, in the same order — but
        reads the trace straight out of the columns: no
        :class:`IORequest` objects, per-request attribute lookups
        hoisted into locals, and the single-block case (the paper's
        workloads are block-granular) fully inlined.
        """
        trace: ColumnarTrace = self.trace
        if len(trace) == 0:
            return 0.0
        bad = trace.first_disorder()
        if bad is not None:
            raise TraceError(
                f"trace not time-ordered at t={float(trace.times[bad])} "
                f"(< {float(trace.times[bad - 1])})"
            )
        times, disks, blocks, nblocks, writes = trace.as_lists()
        if self.probe is None:
            return self._run_columnar_fast(
                times, disks, blocks, nblocks, writes
            )

        cache_access = self.cache.access
        on_write = self.write_policy.on_write
        on_evicted = self.write_policy.on_evicted
        # Most write policies inherit the no-op after_read_wake; skip
        # the call entirely in that case.
        after_read_wake = (
            None
            if type(self.write_policy).after_read_wake
            is WritePolicy.after_read_wake
            else self.write_policy.after_read_wake
        )
        quick = [d.submit_quick for d in self.array.disks]
        prefetcher = self.prefetcher
        probe = self.probe
        hit_latency = self.config.cache_hit_latency_s
        append_response = self._responses.append
        disk_reads = 0

        time = 0.0
        for time, disk, block, count, is_write in zip(
            times, disks, blocks, nblocks, writes
        ):
            if count == 1:
                key = (disk, block)
                worst = hit_latency
                outcome = cache_access(key, time, is_write)
                if is_write:
                    for victim, state in outcome.evicted:
                        on_evicted(victim, state, time)
                    latency = on_write(key, time)
                    if latency > worst:
                        worst = latency
                elif not outcome.hit:
                    latency, wake_delay = quick[disk](time, block, False)
                    disk_reads += 1
                    if latency > worst:
                        worst = latency
                    for victim, state in outcome.evicted:
                        on_evicted(victim, state, time)
                    if after_read_wake is not None:
                        after_read_wake(disk, time, woke=wake_delay > 0)
                    if prefetcher is not None:
                        self._prefetch(key, wake_delay > 0, time)
            else:
                worst = hit_latency
                for i in range(count):
                    key = (disk, block + i)
                    outcome = cache_access(key, time, is_write)
                    latency = hit_latency
                    if is_write:
                        for victim, state in outcome.evicted:
                            on_evicted(victim, state, time)
                        write_latency = on_write(key, time)
                        if write_latency > latency:
                            latency = write_latency
                    elif not outcome.hit:
                        read_latency, wake_delay = quick[disk](
                            time, block + i, False
                        )
                        disk_reads += 1
                        if read_latency > latency:
                            latency = read_latency
                        for victim, state in outcome.evicted:
                            on_evicted(victim, state, time)
                        if after_read_wake is not None:
                            after_read_wake(disk, time, woke=wake_delay > 0)
                        if prefetcher is not None:
                            self._prefetch(key, wake_delay > 0, time)
                    if latency > worst:
                        worst = latency
            append_response(worst)
            if probe is not None:
                probe(RequestComplete(time, disk, worst, is_write, count))
        self._disk_reads += disk_reads
        return time

    def _run_columnar_fast(self, times, disks, blocks_col, counts, writes):
        """Probe-free columnar loop with the cache access path inlined.

        Only runs when no event hook is attached (the traced loop above
        keeps the full event stream). Performs exactly the operations of
        ``StorageCache.access`` + the traced loop, in the same order;
        the plain-counter statistics are kept in locals and folded into
        ``CacheStats`` once at the end (integer addition commutes, and
        nothing reads the counters mid-run). The columnar/legacy
        equivalence tests pin the results bit for bit.
        """
        cache = self.cache
        policy = self.policy
        write_policy = self.write_policy
        blocks = cache._blocks
        blocks_get = blocks.get
        blocks_pop = blocks.pop
        stats = cache.stats
        seen = stats._seen
        make_room = cache._make_room
        capacity = cache.capacity
        dirty_get = cache._dirty_by_disk.get
        on_access = policy.on_access
        on_insert = policy.on_insert
        policy_evict = policy.evict
        on_write = write_policy.on_write
        on_evicted = write_policy.on_evicted
        after_read_wake = (
            None
            if type(write_policy).after_read_wake
            is WritePolicy.after_read_wake
            else write_policy.after_read_wake
        )
        quick = [d.submit_quick for d in self.array.disks]
        prefetcher = self.prefetcher
        hit_latency = self.config.cache_hit_latency_s
        append_response = self._responses.append
        block_state = BlockState
        disk_reads = 0
        n_acc = n_read = n_write = 0
        n_hit = n_miss = n_cold = n_pf_hits = 0
        n_evict = n_dirty_evict = 0

        time = 0.0
        for time, disk, block, count, is_write in zip(
            times, disks, blocks_col, counts, writes
        ):
            if count == 1:
                key = (disk, block)
                n_acc += 1
                if is_write:
                    n_write += 1
                else:
                    n_read += 1
                worst = hit_latency
                state = blocks_get(key)
                if state is not None:
                    n_hit += 1
                    on_access(key, time, True)
                    if state.prefetched:
                        state.prefetched = False
                        n_pf_hits += 1
                    if is_write:
                        latency = on_write(key, time)
                        if latency > worst:
                            worst = latency
                else:
                    n_miss += 1
                    if key not in seen:
                        n_cold += 1
                        seen.add(key)
                    on_access(key, time, False)
                    if capacity is not None and len(blocks) >= capacity:
                        if (
                            cache._pinned == 0
                            and len(blocks) == capacity
                            and len(policy)
                        ):
                            # _make_room's steady-state case inlined:
                            # exactly one eviction, no pinned blocks
                            victim = policy_evict(time)
                            vstate = blocks_pop(victim, None)
                            if vstate is None:
                                raise SimulationError(
                                    "policy evicted non-resident block "
                                    f"{victim}"
                                )
                            n_evict += 1
                            if vstate.dirty:
                                n_dirty_evict += 1
                                bucket = dirty_get(victim[0])
                                if bucket is not None:
                                    bucket.discard(victim)
                            evicted = ((victim, vstate),)
                        else:
                            evicted = make_room(time)
                    else:
                        evicted = ()
                    blocks[key] = block_state()
                    on_insert(key, time)
                    if is_write:
                        for victim, vstate in evicted:
                            on_evicted(victim, vstate, time)
                        latency = on_write(key, time)
                        if latency > worst:
                            worst = latency
                    else:
                        latency, wake_delay = quick[disk](time, block, False)
                        disk_reads += 1
                        if latency > worst:
                            worst = latency
                        for victim, vstate in evicted:
                            on_evicted(victim, vstate, time)
                        if after_read_wake is not None:
                            after_read_wake(disk, time, woke=wake_delay > 0)
                        if prefetcher is not None:
                            self._prefetch(key, wake_delay > 0, time)
                append_response(worst)
            else:
                # Multi-block requests are rare; go through the cache's
                # regular access path (its counters update CacheStats
                # directly, which composes with the local counters).
                cache_access = cache.access
                worst = hit_latency
                for i in range(count):
                    key = (disk, block + i)
                    outcome = cache_access(key, time, is_write)
                    latency = hit_latency
                    if is_write:
                        for victim, vstate in outcome.evicted:
                            on_evicted(victim, vstate, time)
                        write_latency = on_write(key, time)
                        if write_latency > latency:
                            latency = write_latency
                    elif not outcome.hit:
                        read_latency, wake_delay = quick[disk](
                            time, block + i, False
                        )
                        disk_reads += 1
                        if read_latency > latency:
                            latency = read_latency
                        for victim, vstate in outcome.evicted:
                            on_evicted(victim, vstate, time)
                        if after_read_wake is not None:
                            after_read_wake(disk, time, woke=wake_delay > 0)
                        if prefetcher is not None:
                            self._prefetch(key, wake_delay > 0, time)
                    if latency > worst:
                        worst = latency
                append_response(worst)
        stats.accesses += n_acc
        stats.read_accesses += n_read
        stats.write_accesses += n_write
        stats.hits += n_hit
        stats.misses += n_miss
        stats.cold_misses += n_cold
        stats.prefetch_hits += n_pf_hits
        stats.evictions += n_evict
        stats.dirty_evictions += n_dirty_evict
        self._disk_reads += disk_reads
        return time

    def handle_request(self, req: IORequest) -> float:
        """Process one request through cache, write policy, and disks.

        Returns the client-visible response time (also accumulated for
        the final report). Callers must supply requests in
        non-decreasing time order — the trace loop and the closed-loop
        driver both guarantee it.
        """
        cache = self.cache
        write_policy = self.write_policy
        hit_latency = self.config.cache_hit_latency_s
        worst = hit_latency
        for key in req.block_keys():
            outcome = cache.access(key, req.time, req.is_write)
            latency = hit_latency
            if req.is_write:
                for victim, state in outcome.evicted:
                    write_policy.on_evicted(victim, state, req.time)
                latency = max(latency, write_policy.on_write(key, req.time))
            elif not outcome.hit:
                response = self.array.submit(
                    req.disk, req.time, key[1], 1, is_write=False
                )
                self._disk_reads += 1
                latency = max(latency, response.response_time_s)
                for victim, state in outcome.evicted:
                    write_policy.on_evicted(victim, state, req.time)
                write_policy.after_read_wake(
                    req.disk, req.time, woke=response.wake_delay_s > 0
                )
                if self.prefetcher is not None:
                    self._prefetch(
                        key, response.wake_delay_s > 0, req.time
                    )
            if latency > worst:
                worst = latency
        self._responses.append(worst)
        if self.probe is not None:
            self.probe(
                RequestComplete(
                    req.time, req.disk, worst, req.is_write, req.nblocks
                )
            )
        return worst

    def finish(self, end_time: float) -> SimulationResult:
        """Wind the disks down to ``end_time`` and build the report."""
        self.array.finalize(end_time)
        return self._build_result(self._responses, self._disk_reads, end_time)

    def _prefetch(self, key, woke: bool, time: float) -> None:
        """Ride a demand read's disk activation with sequential blocks.

        The prefetch transfer queues behind the demand read (it cannot
        delay it) and its service time/energy are charged to the disk;
        admitted blocks may evict, and evicted dirty blocks are
        persisted by the write policy as usual.
        """
        disk_id = key[0]
        disk = self.array[disk_id]
        plan = self.prefetcher.plan(
            key,
            woke_disk=woke,
            time=time,
            cache=self.cache,
            disk_blocks=disk.geometry.num_blocks,
        )
        if not plan:
            return
        self.array.submit(disk_id, time, plan[0][1], len(plan))
        for pkey in plan:
            outcome = self.cache.admit(pkey, time)
            for victim, state in outcome.evicted:
                self.write_policy.on_evicted(victim, state, time)

    def _build_result(
        self, responses: list[float], disk_reads: int, end_time: float
    ) -> SimulationResult:
        stats = self.cache.stats
        disks = [
            DiskReport(
                disk_id=d.disk_id,
                account=d.account,
                mean_interarrival_s=d.mean_interarrival_s,
                requests=d.request_count,
            )
            for d in self.array.disks
        ]
        total = self.array.total_account()
        log_energy = 0.0
        if isinstance(self.write_policy, WTDUPolicy):
            log_energy = self.write_policy.extra_energy_j
        return SimulationResult(
            label=self.label,
            dpm=self.config.dpm,
            duration_s=end_time,
            disk_energy_j=self.array.total_energy_j,
            log_energy_j=log_energy,
            disks=disks,
            response=ResponseStats.from_samples(responses),
            cache_accesses=stats.accesses,
            cache_hits=stats.hits,
            cache_misses=stats.misses,
            cold_misses=stats.cold_misses,
            evictions=stats.evictions,
            disk_reads=disk_reads,
            disk_writes=self.write_policy.disk_writes,
            spinups=total.spinups,
            spindowns=total.spindowns,
            pending_dirty=self.write_policy.pending_dirty(),
            prefetch_admissions=stats.prefetch_admissions,
            prefetch_hits=stats.prefetch_hits,
        )
