"""The full-system simulator: trace → cache → disks → DPM → report.

:class:`~repro.sim.engine.StorageSimulator` wires a workload trace, a
storage cache with a replacement policy, a write policy, and a DPM-
managed disk array into one run; :mod:`repro.sim.runner` offers
one-call experiment helpers used by the examples and benchmarks.
"""

from repro.sim.closedloop import (
    ClientWorkload,
    ClosedLoopSimulator,
    HotCoolWorkload,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import StorageSimulator
from repro.sim.results import ResponseStats, SimulationResult
from repro.sim.runner import (
    POLICY_NAMES,
    WRITE_POLICY_NAMES,
    build_policy,
    build_session,
    build_write_policy,
    restore_session,
    run_simulation,
)
from repro.sim.session import SessionCheckpoint, SimulationSession
from repro.sim.sweep import SweepPoint, SweepResult, grid_sweep

__all__ = [
    "ClientWorkload",
    "ClosedLoopSimulator",
    "HotCoolWorkload",
    "POLICY_NAMES",
    "SessionCheckpoint",
    "SimulationSession",
    "SweepPoint",
    "SweepResult",
    "grid_sweep",
    "ResponseStats",
    "SimulationConfig",
    "SimulationResult",
    "StorageSimulator",
    "WRITE_POLICY_NAMES",
    "build_policy",
    "build_session",
    "build_write_policy",
    "restore_session",
    "run_simulation",
]
