"""Simulation reports."""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

import numpy as np

from repro.power.accounting import EnergyAccount
from repro.units import KILO, MS_PER_S


@dataclass(frozen=True)
class ResponseStats:
    """Client-visible request latency distribution."""

    count: int
    mean_s: float
    median_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "ResponseStats":
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(samples)
        return cls(
            count=len(samples),
            mean_s=float(arr.mean()),
            median_s=float(np.percentile(arr, 50)),
            p95_s=float(np.percentile(arr, 95)),
            p99_s=float(np.percentile(arr, 99)),
            max_s=float(arr.max()),
        )

    def to_dict(self) -> dict:
        """JSON-safe dict."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ResponseStats":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class DiskReport:
    """Per-disk rollup for the Figure 7 analyses."""

    disk_id: int
    account: EnergyAccount
    mean_interarrival_s: float
    requests: int

    def time_breakdown(self) -> dict[str, float]:
        return self.account.time_breakdown()

    def to_dict(self) -> dict:
        """JSON-safe dict."""
        return {
            "disk_id": self.disk_id,
            "account": self.account.to_dict(),
            "mean_interarrival_s": self.mean_interarrival_s,
            "requests": self.requests,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiskReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            disk_id=data["disk_id"],
            account=EnergyAccount.from_dict(data["account"]),
            mean_interarrival_s=data["mean_interarrival_s"],
            requests=data["requests"],
        )


@dataclass(frozen=True)
class SimulationResult:
    """Everything a run produced.

    ``total_energy_j`` is the quantity the paper's energy figures plot:
    disk array energy (all modes, transitions, and request service)
    plus any incremental log-device energy (WTDU).
    """

    label: str
    dpm: str
    duration_s: float
    disk_energy_j: float
    log_energy_j: float
    disks: list[DiskReport]
    response: ResponseStats
    cache_accesses: int
    cache_hits: int
    cache_misses: int
    cold_misses: int
    evictions: int
    disk_reads: int
    disk_writes: int
    spinups: int
    spindowns: int
    pending_dirty: int
    prefetch_admissions: int = 0
    prefetch_hits: int = 0
    #: Counters snapshot from a :class:`~repro.observe.sinks.MetricsSink`
    #: when the run was traced (``--trace-events``); ``None`` otherwise.
    trace_metrics: dict | None = None

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched blocks that were later demanded."""
        if not self.prefetch_admissions:
            return 0.0
        return self.prefetch_hits / self.prefetch_admissions

    @property
    def total_energy_j(self) -> float:
        return self.disk_energy_j + self.log_energy_j

    @property
    def hit_ratio(self) -> float:
        return (
            self.cache_hits / self.cache_accesses if self.cache_accesses else 0.0
        )

    @property
    def cold_miss_fraction(self) -> float:
        return (
            self.cold_misses / self.cache_accesses if self.cache_accesses else 0.0
        )

    def energy_relative_to(self, baseline: "SimulationResult") -> float:
        """Energy normalized to a baseline run (the Figure 6 bars)."""
        return self.total_energy_j / baseline.total_energy_j

    def savings_over(self, baseline: "SimulationResult") -> float:
        """Fractional energy savings vs a baseline (Figures 8 and 9)."""
        return 1.0 - self.energy_relative_to(baseline)

    def to_dict(self) -> dict:
        """JSON-safe dict: the full result, nested reports included."""
        data = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("disks", "response")
        }
        data["disks"] = [d.to_dict() for d in self.disks]
        data["response"] = self.response.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Inverse of :meth:`to_dict` — exact round-trip through JSON."""
        kwargs = dict(data)
        kwargs["disks"] = [DiskReport.from_dict(d) for d in data["disks"]]
        kwargs["response"] = ResponseStats.from_dict(data["response"])
        kwargs.setdefault("trace_metrics", None)
        return cls(**kwargs)

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        r = self.response
        return (
            f"{self.label} [{self.dpm} DPM]: "
            f"energy={self.total_energy_j / KILO:.1f} kJ "
            f"(disks {self.disk_energy_j / KILO:.1f}, log "
            f"{self.log_energy_j / KILO:.1f}); "
            f"hit ratio={self.hit_ratio:.1%} "
            f"(cold {self.cold_miss_fraction:.1%}); "
            f"mean response={r.mean_s * MS_PER_S:.2f} ms "
            f"(p95 {r.p95_s * MS_PER_S:.2f} ms); "
            f"spinups={self.spinups}; "
            f"disk I/O={self.disk_reads}R/{self.disk_writes}W"
        )
