"""Closed-loop simulation: clients that wait for their I/O.

The paper's OLTP trace was captured under TPC-C — a *closed* system:
each emulated terminal submits a request, waits for it to complete,
thinks, and only then submits the next one. Open-loop traces (fixed
timestamps) cannot express the resulting feedback: when a disk pays a
10.9-second spin-up, the blocked client stops generating load, which
lengthens every disk's idle gaps and changes what DPM can harvest.

:class:`ClosedLoopSimulator` drives the regular engine request-by-
request from a population of clients. Each client cycles::

    issue -> response time -> exponential think time -> issue ...

Per-client next-issue times live in a heap, so the engine always sees
arrivals in time order. The workload's *addresses* come from a
:class:`ClientWorkload`; :class:`HotCoolWorkload` mirrors the OLTP-like
generator's skew (a hot band with a large weakly-reused footprint, a
cool band with small reusable working sets).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod

import numpy as np

from repro.cache.policies.base import OfflinePolicy, ReplacementPolicy
from repro.cache.write.base import WritePolicy
from repro.errors import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.engine import StorageSimulator
from repro.sim.results import SimulationResult
from repro.traces.locality import ZipfPopularity
from repro.traces.record import IORequest
from repro.units import GIB


class ClientWorkload(ABC):
    """Address/op generator for closed-loop clients."""

    @abstractmethod
    def next_request(self, time: float) -> IORequest:
        """The next request, stamped with ``time``."""


class HotCoolWorkload(ClientWorkload):
    """The OLTP-like two-band address mix, feedback-driven.

    Args:
        num_disks / num_hot_disks: Band split (hot band gets
            ``hot_traffic_fraction`` of requests).
        rng: Seeded generator (shared with the simulator driver).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        num_disks: int = 21,
        num_hot_disks: int = 11,
        hot_traffic_fraction: float = 0.9,
        hot_footprint_blocks: int = 60_000,
        cool_footprint_blocks: int = 60,
        write_ratio: float = 0.22,
        disk_size_bytes: int = 18 * GIB,
        block_size: int = 8192,
    ) -> None:
        if not 0 < num_hot_disks < num_disks:
            raise ConfigurationError("need 0 < num_hot_disks < num_disks")
        self._rng = rng
        self.num_disks = num_disks
        self.num_hot = num_hot_disks
        self.hot_fraction = hot_traffic_fraction
        self.write_ratio = write_ratio
        disk_blocks = disk_size_bytes // block_size
        self._pickers = []
        for disk in range(num_disks):
            footprint = (
                hot_footprint_blocks if disk < num_hot_disks
                else cool_footprint_blocks
            )
            self._pickers.append(
                ZipfPopularity(
                    footprint=min(footprint, disk_blocks),
                    rng=rng,
                    zipf_a=1.15 if disk < num_hot_disks else 1.0,
                    base_block=(disk * 131_071)
                    % max(1, disk_blocks - footprint),
                )
            )

    def next_request(self, time: float) -> IORequest:
        if self._rng.random() < self.hot_fraction:
            disk = int(self._rng.integers(self.num_hot))
        else:
            disk = self.num_hot + int(
                self._rng.integers(self.num_disks - self.num_hot)
            )
        return IORequest(
            time=time,
            disk=disk,
            block=self._pickers[disk].next_block(),
            is_write=bool(self._rng.random() < self.write_ratio),
        )


class ClosedLoopSimulator:
    """Drives the storage engine from a closed client population.

    Args:
        config: Array/cache configuration.
        policy: Online replacement policy (offline policies need the
            future, which a closed loop does not have in advance).
        workload: Address generator.
        num_clients: Concurrent terminals (the multiprogramming level).
        mean_think_time_s: Exponential think time between a completion
            and the client's next request.
        duration_s: Simulated wall-clock to run for.
        seed: Drives think times (the workload carries its own rng).
    """

    def __init__(
        self,
        config: SimulationConfig,
        policy: ReplacementPolicy,
        workload: ClientWorkload,
        num_clients: int = 32,
        mean_think_time_s: float = 1.0,
        duration_s: float = 600.0,
        write_policy: WritePolicy | None = None,
        seed: int = 0,
        label: str = "closed-loop",
        probe=None,
    ) -> None:
        if isinstance(policy, OfflinePolicy):
            raise ConfigurationError(
                "closed-loop simulation generates requests on the fly; "
                "offline policies cannot be prepared for it"
            )
        if num_clients < 1:
            raise ConfigurationError("num_clients must be >= 1")
        if mean_think_time_s < 0 or duration_s <= 0:
            raise ConfigurationError("need think time >= 0 and duration > 0")
        self.engine = StorageSimulator(
            trace=(),
            config=config,
            policy=policy,
            write_policy=write_policy,
            label=label,
            probe=probe,
        )
        self.workload = workload
        self.num_clients = num_clients
        self.mean_think_time_s = mean_think_time_s
        self.duration_s = duration_s
        self._rng = np.random.default_rng(seed)
        self.completed_requests = 0

    def run(self) -> SimulationResult:
        """Run the closed loop; returns the standard report.

        Throughput is emergent: ``completed_requests / duration`` falls
        when spin-ups block clients — the feedback open-loop traces
        cannot show.
        """
        think = lambda: (
            float(self._rng.exponential(self.mean_think_time_s))
            if self.mean_think_time_s > 0
            else 0.0
        )
        # (next_issue_time, client_id); initial think desynchronizes
        ready = [(think(), client) for client in range(self.num_clients)]
        heapq.heapify(ready)
        while ready:
            time, client = heapq.heappop(ready)
            if time >= self.duration_s:
                continue  # this client's next turn falls past the end
            request = self.workload.next_request(time)
            response = self.engine.handle_request(request)
            self.completed_requests += 1
            heapq.heappush(ready, (time + response + think(), client))
        return self.engine.finish(self.duration_s)

    @property
    def throughput_hz(self) -> float:
        """Completed requests per simulated second."""
        return self.completed_requests / self.duration_s
