"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still being able to discriminate finer-grained conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulation, disk, cache, or trace parameter is invalid.

    Raised eagerly at construction time so that misconfiguration is
    reported before a (potentially long) simulation starts.
    """


class PowerModelError(ReproError):
    """The disk power model is inconsistent.

    Examples: power levels not strictly decreasing with mode index,
    a transition with negative time, or an empty mode list.
    """


class TraceError(ReproError):
    """A trace record or trace file is malformed."""


class SimulationError(ReproError):
    """The simulation engine detected an internal inconsistency.

    This indicates a bug (e.g. time moving backwards, eviction from an
    empty cache) rather than bad user input.
    """


class PolicyError(ReproError):
    """A replacement or write policy was driven incorrectly.

    Examples: asking an offline policy to run without preparing it with
    the access sequence, or evicting from an empty policy.
    """


class RecoveryError(ReproError):
    """Crash recovery of a WTDU log region found corrupt state."""


class InvariantViolation(ReproError):
    """The event stream violated a runtime simulation invariant.

    Raised by :class:`repro.observe.InvariantChecker` while events
    stream — e.g. cache occupancy exceeding capacity, a disk serving
    I/O while spun down, negative dwell times, timestamps moving
    backwards, or energy ledgers that do not balance. The message
    includes the offending event and a window of the events that
    preceded it.
    """


class ServeError(ReproError):
    """The online service mode hit a protocol or lifecycle error.

    Examples: a malformed ingest line, an ingest attempted after drain
    began, or a checkpoint file that cannot be parsed. Backpressure is
    *not* an error — a full ingest queue produces an explicit
    ``RETRY`` response, never an exception.
    """


class CampaignError(ReproError):
    """An experiment campaign could not be executed or completed.

    Examples: a malformed campaign spec file, a corrupt result-store
    entry, or grid points that exhausted their retry budget while the
    campaign was configured to treat failures as fatal.
    """
