"""Command-line interface.

Main subcommands::

    python -m repro info                         # Table 1: the disk model
    python -m repro generate oltp -o trace.csv   # produce a workload file
    python -m repro trace import blk.txt -o trace.csv  # import a real trace
    python -m repro simulate trace.csv -p pa-lru # run one policy
    python -m repro simulate --workload dbms -p pa-lru   # generate + run
    python -m repro compare trace.csv -p lru -p pa-lru   # normalized table
    python -m repro campaign spec.json --workers 4 --cache-dir .cache
    python -m repro faults trace.csv --matrix      # crash-recovery audit
    python -m repro serve -p pa-lru --tcp-port 7777  # live ingest daemon

``generate`` accepts any name in :data:`WORKLOAD_NAMES` — the classic
``oltp``/``cello``/``synthetic`` generators plus the zoo families in
:mod:`repro.traces.zoo` — and the most useful generator knobs;
``simulate``/``compare`` take either a trace CSV or ``--workload`` and
accept any policy from :data:`repro.sim.runner.POLICY_NAMES` and any
write policy from :data:`repro.sim.runner.WRITE_POLICY_NAMES`.
``trace import`` converts blktrace text dumps and iostat reports into
the native CSV (:mod:`repro.traces.ingest`). ``campaign`` runs a whole
experiment grid from a JSON spec file through the parallel, cached,
journaled executor in :mod:`repro.campaign`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.tables import ascii_table
from repro.errors import ReproError
from repro.power.envelope import EnergyEnvelope
from repro.power.specs import ULTRASTAR_36Z15, build_power_model
from repro.sim.runner import POLICY_NAMES, WRITE_POLICY_NAMES, run_simulation
from repro.traces.cello import CelloTraceConfig, generate_cello_trace
from repro.traces.io import load_trace, save_trace
from repro.traces.oltp import OLTPTraceConfig, generate_oltp_trace
from repro.traces.stats import characterize
from repro.traces.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.traces.zoo import ZOO_WORKLOADS
from repro.units import KILO, MINUTE, MS_PER_S

#: ``generate`` / ``--workload`` choices: the classic generators plus
#: the workload zoo families (see repro.traces.zoo).
WORKLOAD_NAMES = ("oltp", "cello", "synthetic") + tuple(sorted(ZOO_WORKLOADS))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power-aware storage cache management (HPCA 2004 "
        "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the disk power model (Table 1)")

    gen = sub.add_parser("generate", help="generate a workload trace file")
    gen.add_argument(
        "workload", choices=WORKLOAD_NAMES,
        help="which generator to run",
    )
    gen.add_argument("-o", "--output", required=True, help="output CSV path")
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument(
        "--duration", type=float, default=None,
        help="trace duration in seconds (all workloads except synthetic)",
    )
    gen.add_argument(
        "--requests", type=int, default=None,
        help="request count (synthetic)",
    )
    gen.add_argument("--write-ratio", type=float, default=None)

    trace_cmd = sub.add_parser(
        "trace",
        help="trace-file utilities (import real block traces)",
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    imp = trace_sub.add_parser(
        "import",
        help="convert a blktrace text dump or iostat report to the "
        "native trace CSV (see repro.traces.ingest)",
    )
    imp.add_argument("source", help="blkparse text dump or iostat report")
    imp.add_argument("-o", "--output", required=True, help="output CSV path")
    imp.add_argument(
        "--format", choices=("blktrace", "iostat"), default=None,
        help="input format (default: sniffed from the file)",
    )
    imp.add_argument(
        "--block-size", type=int, default=None, metavar="BYTES",
        help="simulator block size (default 8 KiB)",
    )
    imp.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="iostat sampling interval (default 1.0)",
    )

    def add_run_args(p):
        p.add_argument(
            "trace", nargs="?", default=None,
            help="trace CSV (from `repro generate` / `repro trace "
            "import`); omit to use --workload",
        )
        p.add_argument(
            "--workload", choices=WORKLOAD_NAMES, default=None,
            help="generate the workload in-process instead of reading "
            "a trace file",
        )
        p.add_argument(
            "--seed", type=int, default=None,
            help="generator seed (--workload only)",
        )
        p.add_argument(
            "--duration", type=float, default=None,
            help="generated trace duration in seconds (--workload only)",
        )
        p.add_argument(
            "--disks", type=int, default=None,
            help="number of disks (default: inferred from the trace)",
        )
        p.add_argument(
            "--cache-blocks", type=int, default=2048,
            help="cache capacity in blocks (default 2048)",
        )
        p.add_argument(
            "--dpm", choices=("practical", "oracle", "always_on"),
            default="practical",
        )
        p.add_argument(
            "-w", "--write-policy", choices=WRITE_POLICY_NAMES,
            default="write-back",
        )
        p.add_argument(
            "--prefetch-depth", type=int, default=0,
            help="enable sequential wake prefetching (online policies)",
        )
        p.add_argument(
            "--trace-events", action="store_true",
            help="stream structured events through a metrics sink and "
            "report the counters (see repro.observe)",
        )

    run = sub.add_parser("simulate", help="simulate one policy on a trace")
    add_run_args(run)
    run.add_argument(
        "-p", "--policy", choices=POLICY_NAMES, default="lru",
    )
    run.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="write every simulation event as JSONL to PATH",
    )

    cmp_ = sub.add_parser(
        "compare", help="run several policies and print a normalized table"
    )
    add_run_args(cmp_)
    cmp_.add_argument(
        "-p", "--policy", action="append", dest="policies",
        choices=POLICY_NAMES,
        help="repeatable; defaults to lru + pa-lru",
    )

    rep = sub.add_parser(
        "reproduce",
        help="regenerate the paper's headline results in one command",
    )
    rep.add_argument(
        "--quick", action="store_true",
        help="reduced trace lengths (~30 s instead of ~3 min)",
    )

    camp = sub.add_parser(
        "campaign",
        help="run an experiment grid from a spec file, in parallel and "
        "resumable (see repro.campaign)",
    )
    camp.add_argument("spec", help="campaign spec JSON (see repro.campaign.spec)")
    camp.add_argument(
        "--workers", type=int, default=1,
        help="simulation worker processes (default 1 = serial)",
    )
    camp.add_argument(
        "--cache-dir", default=None,
        help="content-addressed result store; re-runs skip cached points",
    )
    camp.add_argument(
        "--resume", action="store_true",
        help="require an existing --cache-dir and serve finished points "
        "from it (error if the store is missing)",
    )
    camp.add_argument(
        "--journal", default=None,
        help="JSONL telemetry path (default <cache-dir>/journal.jsonl)",
    )
    camp.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="kill any grid point exceeding this wall time (workers > 1)",
    )
    camp.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts for a failed/timed-out point (default 0)",
    )
    camp.add_argument("--csv", default=None, help="export records as CSV")
    camp.add_argument("--json", default=None, help="export records as JSON")
    camp.add_argument(
        "--trace-events", action="store_true",
        help="attach a metrics sink to every grid point; counters appear "
        "as trace_metrics in each record",
    )

    faults = sub.add_parser(
        "faults",
        help="crash a simulation and audit WTDU recovery, or sweep a "
        "crash matrix across write policies (see repro.faults)",
    )
    faults.add_argument("trace", help="trace CSV (from `repro generate`)")
    faults.add_argument(
        "--disks", type=int, default=None,
        help="number of disks (default: inferred from the trace)",
    )
    faults.add_argument(
        "--cache-blocks", type=int, default=2048,
        help="cache capacity in blocks (default 2048)",
    )
    faults.add_argument(
        "-p", "--policy", choices=POLICY_NAMES, default="lru",
    )
    faults.add_argument(
        "-w", "--write-policy", choices=WRITE_POLICY_NAMES, default="wtdu",
        help="write policy for a single crash scenario (default wtdu)",
    )
    point = faults.add_mutually_exclusive_group()
    point.add_argument(
        "--crash-at", type=int, default=None, metavar="N",
        help="cut power after N completed requests",
    )
    point.add_argument(
        "--crash-time", type=float, default=None, metavar="SECONDS",
        help="cut power at this simulated time",
    )
    faults.add_argument(
        "--matrix", action="store_true",
        help="sweep spread crash points across every write policy "
        "instead of one scenario (ignores -w/--crash-at/--crash-time)",
    )
    faults.add_argument(
        "--seed", type=int, default=0,
        help="fault-injection RNG seed (default 0)",
    )
    faults.add_argument(
        "--spinup-fail-rate", type=float, default=0.0, metavar="P",
        help="probability each spin-up attempt fails (default 0)",
    )
    faults.add_argument(
        "--io-error-rate", type=float, default=0.0, metavar="P",
        help="probability each request hits a transient I/O error "
        "(default 0)",
    )
    faults.add_argument(
        "--log-region-blocks", type=int, default=4096,
        help="WTDU log-region capacity in blocks (default 4096)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the online service daemon — live request ingest in "
        "simulated-time lockstep (see repro.serve)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--tcp-port", type=int, default=0,
        help="line-protocol port (0 = ephemeral, printed in READY)",
    )
    serve.add_argument(
        "--http-port", type=int, default=0,
        help="/metrics + /ingest port (0 = ephemeral, printed in READY)",
    )
    serve.add_argument(
        "-p", "--policy", choices=POLICY_NAMES, default="lru",
        help="replacement policy (offline policies cannot serve live)",
    )
    serve.add_argument("--disks", type=int, default=4)
    serve.add_argument("--cache-blocks", type=int, default=2048)
    serve.add_argument(
        "--dpm", choices=("practical", "oracle", "always_on"),
        default="practical",
    )
    serve.add_argument(
        "-w", "--write-policy", choices=WRITE_POLICY_NAMES,
        default="write-back",
    )
    serve.add_argument("--prefetch-depth", type=int, default=0)
    serve.add_argument(
        "--time-dilation", type=float, default=1.0,
        help="simulated seconds per wall second (default 1.0)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=4096,
        help="bounded ingest queue size; overflow answers RETRY",
    )
    serve.add_argument("--batch-max", type=int, default=256)
    serve.add_argument(
        "--tick-interval", type=float, default=0.05,
        help="idle watermark-advance period in wall seconds",
    )
    serve.add_argument(
        "--feed-delay", type=float, default=0.0,
        help="test throttle: sleep this many wall seconds after each "
        "fed batch (provokes backpressure deterministically)",
    )
    serve.add_argument(
        "--checkpoint-dir", default=None,
        help="enable checkpointing (POST /checkpoint, --checkpoint-every, "
        "and a final checkpoint on drain) into this directory",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="also checkpoint every N served requests",
    )
    serve.add_argument(
        "--restore", default=None, metavar="CHECKPOINT",
        help="restore from a checkpoint file and continue serving",
    )
    serve.add_argument(
        "--load-gen", action="store_true",
        help="run the load generator against an existing daemon "
        "instead of serving (needs --tcp-port)",
    )
    serve.add_argument(
        "--users", type=int, default=8, help="load-gen: concurrent users"
    )
    serve.add_argument(
        "--requests", type=int, default=10_000,
        help="load-gen: total requests to send",
    )
    serve.add_argument(
        "--workload", choices=("zipf", "oltp"), default="zipf",
        help="load-gen: synthetic request mix",
    )
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument(
        "--pace", type=float, default=0.0,
        help="load-gen: wall seconds between a user's requests",
    )
    serve.add_argument(
        "--explicit-time-base", type=float, default=None, metavar="T",
        help="load-gen: pin explicit t= stamps offset by T (needs "
        "--users 1; makes the daemon's timeline deterministic)",
    )

    check = sub.add_parser(
        "check",
        help="run the domain static-analysis pass (reprolint) over the "
        "source tree (see repro.check)",
    )
    from repro.check.runner import add_arguments as add_check_arguments

    add_check_arguments(check)

    bench = sub.add_parser(
        "bench",
        help="time the simulator hot paths and write BENCH_hotpath.json "
        "(see benchmarks/perf/)",
    )
    bench.add_argument(
        "--small", action="store_true",
        help="50k-request smoke workload (CI); default is the full "
        "1M-request suite",
    )
    bench.add_argument(
        "-o", "--output", default="BENCH_hotpath.json",
        help="report path (default BENCH_hotpath.json)",
    )
    bench.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare speedup ratios against a baseline report and exit "
        "non-zero on regression",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional speedup drop for --check (default 0.25)",
    )
    bench.add_argument(
        "--before", default=None, metavar="JSON",
        help="embed pre-overhaul measurements "
        "(benchmarks/perf/measure_before.py output) in the report",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="re-run each scenario's hot leg under cProfile and write "
        "profile_<scenario>.pstats next to the report",
    )
    return parser


def _cmd_info(_args) -> int:
    model = build_power_model(ULTRASTAR_36Z15)
    envelope = EnergyEnvelope(model)
    thresholds = {mode: t for t, mode in envelope.practical_thresholds()}
    rows = [
        [
            mode.name,
            f"{mode.rpm:.0f}",
            f"{mode.power_w:.2f}",
            f"{mode.spinup_time_s:.2f}",
            f"{mode.round_trip_energy_j:.1f}",
            f"{envelope.breakeven_time(mode.index):.2f}",
            f"{thresholds[mode.index]:.2f}" if mode.index in thresholds else "-",
        ]
        for mode in model
    ]
    print(
        ascii_table(
            ["mode", "rpm", "power(W)", "spin-up(s)", "roundtrip(J)",
             "breakeven(s)", "threshold(s)"],
            rows,
            title=f"{ULTRASTAR_36Z15.name} — multi-speed power model",
        )
    )
    return 0


_CLI_GENERATORS = {
    "oltp": (OLTPTraceConfig, generate_oltp_trace),
    "cello": (CelloTraceConfig, generate_cello_trace),
    "synthetic": (SyntheticTraceConfig, generate_synthetic_trace),
    **ZOO_WORKLOADS,
}


def _generate_workload(
    workload: str,
    seed: int | None,
    duration: float | None,
    requests: int | None = None,
    write_ratio: float | None = None,
):
    """Build a trace from CLI generator knobs (shared generate/run path)."""
    from repro.errors import ConfigurationError

    config_cls, generate = _CLI_GENERATORS[workload]
    overrides = {}
    if seed is not None:
        overrides["seed"] = seed
    if workload == "synthetic":
        if duration is not None:
            raise ConfigurationError(
                "synthetic is sized by --requests, not --duration"
            )
        if requests is not None:
            overrides["num_requests"] = requests
    elif duration is not None:
        overrides["duration_s"] = duration
    if write_ratio is not None:
        # the DBMS family's only writes are row updates
        key = "update_fraction" if workload == "dbms" else "write_ratio"
        overrides[key] = write_ratio
    return generate(config_cls(**overrides))


def _cmd_generate(args) -> int:
    trace = _generate_workload(
        args.workload,
        seed=args.seed,
        duration=args.duration,
        requests=args.requests,
        write_ratio=args.write_ratio,
    )
    save_trace(trace, args.output)
    stats = characterize(trace)
    print(f"wrote {stats.requests:,} requests to {args.output}")
    print(
        f"  disks={stats.disks} writes={stats.write_fraction:.0%} "
        f"mean gap={stats.mean_interarrival_s * MS_PER_S:.2f} ms "
        f"duration={stats.duration_s:.0f} s"
    )
    return 0


def _cmd_trace(args) -> int:
    from repro.traces.ingest import import_to_csv

    kwargs = {}
    if args.block_size is not None:
        kwargs["block_size"] = args.block_size
    summary = import_to_csv(
        args.source,
        args.output,
        args.format,
        interval_s=args.interval,
        **kwargs,
    )
    print(
        f"imported {summary.requests:,} requests "
        f"({summary.format}) to {args.output}"
    )
    print(
        f"  disks={summary.num_disks} duration={summary.duration_s:.1f} s "
        f"lines={summary.lines:,} skipped={summary.skipped:,}"
    )
    return 0


def _infer_disks(trace) -> int:
    if not len(trace):
        return 1
    disks = getattr(trace, "disks", None)
    if disks is not None:
        return int(max(disks)) + 1
    return max(r.disk for r in trace) + 1


def _load(args):
    from repro.errors import ConfigurationError

    workload = getattr(args, "workload", None)
    if (args.trace is None) == (workload is None):
        raise ConfigurationError(
            "give either a trace file or --workload (not both)"
        )
    if workload is not None:
        trace = _generate_workload(
            workload, seed=args.seed, duration=args.duration
        )
    else:
        trace = load_trace(args.trace)
    disks = args.disks or _infer_disks(trace)
    return trace, disks


def _cmd_simulate(args) -> int:
    trace, disks = _load(args)
    result = run_simulation(
        trace,
        args.policy,
        num_disks=disks,
        cache_blocks=args.cache_blocks,
        dpm=args.dpm,
        write_policy=args.write_policy,
        prefetch_depth=args.prefetch_depth,
        trace_events=args.trace_events,
        trace_file=args.trace_file,
    )
    print(result.summary())
    if result.trace_metrics is not None:
        m = result.trace_metrics
        total_events = sum(m["events"].values())
        print(
            f"  trace: {total_events:,} events "
            f"({len(m['events'])} kinds); "
            f"streamed energy={m['total_energy_j'] / KILO:.1f} kJ; "
            f"spinups={m['spinups']} spindowns={m['spindowns']}"
        )
    if args.trace_file is not None:
        print(f"  wrote event trace to {args.trace_file}")
    return 0


def _cmd_compare(args) -> int:
    trace, disks = _load(args)
    policies = args.policies or ["lru", "pa-lru"]
    results = {}
    for policy in policies:
        results[policy] = run_simulation(
            trace,
            policy,
            num_disks=disks,
            cache_blocks=args.cache_blocks,
            dpm=args.dpm,
            write_policy=args.write_policy,
            prefetch_depth=args.prefetch_depth,
            trace_events=args.trace_events,
        )
    base = results[policies[0]]
    rows = [
        [
            policy,
            f"{r.total_energy_j / KILO:.1f}",
            f"{r.energy_relative_to(base):.3f}",
            f"{r.response.mean_s * MS_PER_S:.1f}",
            f"{r.hit_ratio:.1%}",
            r.spinups,
        ]
        for policy, r in results.items()
    ]
    print(
        ascii_table(
            ["policy", "energy (kJ)", f"vs {policies[0]}",
             "mean resp (ms)", "hit ratio", "spinups"],
            rows,
            title=f"{args.trace or args.workload} — {args.dpm} DPM, "
            f"{args.cache_blocks} cache blocks",
        )
    )
    return 0


def _cmd_reproduce(args) -> int:
    """The paper's headline results, compactly."""
    from repro.analysis.figures import belady_counterexample
    from repro.traces.oltp import OLTPTraceConfig, generate_oltp_trace

    quick = getattr(args, "quick", False)
    duration = 2400.0 if quick else 7200.0
    epoch = 300.0 if quick else 900.0
    cache_blocks = 2048

    print("Figure 3 — Belady is not energy-optimal")
    example = belady_counterexample()
    print(
        f"  Belady: {example.belady_misses} misses / "
        f"{example.belady_energy:.0f} energy-units\n"
        f"  OPG   : {example.power_aware_misses} misses / "
        f"{example.power_aware_energy:.0f} energy-units "
        "(more misses, less energy)\n"
    )

    print(
        f"Figure 6(a) — OLTP energy normalized to LRU "
        f"({duration / MINUTE:.0f}-minute trace, Practical DPM)"
    )
    trace = generate_oltp_trace(OLTPTraceConfig(duration_s=duration))
    policies = ("infinite", "belady", "opg", "lru", "pa-lru")
    results = {
        p: run_simulation(
            trace, p, num_disks=21, cache_blocks=cache_blocks,
            pa_epoch_s=epoch,
        )
        for p in policies
    }
    base = results["lru"]
    rows = [
        [
            p,
            f"{results[p].energy_relative_to(base):.3f}",
            f"{results[p].response.mean_s / base.response.mean_s:.2f}",
        ]
        for p in policies
    ]
    print(ascii_table(["policy", "energy vs LRU", "response vs LRU"], rows))
    savings = results["pa-lru"].savings_over(base)
    print(
        f"\nPA-LRU saves {savings:.1%} energy vs LRU "
        "(paper: 16% on the full 2-hour trace)."
    )
    return 0


def _cmd_campaign(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.analysis.campaigns import summary_table
    from repro.campaign import (
        CampaignSpec,
        ResultStore,
        RetryPolicy,
        RunJournal,
        run_campaign,
    )
    from repro.errors import CampaignError

    spec = CampaignSpec.from_file(args.spec)
    if args.trace_events and "trace_events" not in spec.axes:
        spec.fixed["trace_events"] = True

    store = None
    if args.resume and args.cache_dir is None:
        raise CampaignError("--resume needs --cache-dir")
    if args.cache_dir is not None:
        cache_dir = Path(args.cache_dir)
        if args.resume and not cache_dir.is_dir():
            raise CampaignError(
                f"--resume: no result store at {cache_dir}"
            )
        store = ResultStore(cache_dir)

    journal_path = args.journal
    if journal_path is None and args.cache_dir is not None:
        journal_path = Path(args.cache_dir) / "journal.jsonl"

    print(
        f"campaign {spec.name!r}: {spec.grid_size()} grid points, "
        f"workers={args.workers}"
        + (f", store={store.root}" if store is not None else "")
    )
    journal = RunJournal(journal_path) if journal_path is not None else None
    try:
        sweep = run_campaign(
            spec,
            workers=args.workers,
            store=store,
            journal=journal,
            retry=RetryPolicy(timeout_s=args.timeout, retries=args.retries),
        )
    finally:
        if journal is not None:
            journal.close()

    records = sweep.records()
    if args.csv is not None:
        sweep.to_csv(args.csv)
        print(f"wrote {len(records)} records to {args.csv}")
    if args.json is not None:
        Path(args.json).write_text(json_module.dumps(records, indent=2))
        print(f"wrote {len(records)} records to {args.json}")
    if journal_path is not None:
        print(summary_table(journal_path))
    failed = spec.grid_size() - len(records)
    if failed:
        print(f"WARNING: {failed} grid point(s) failed; see the journal")
        return 1
    if not args.csv and not args.json:
        best = sweep.best("energy_j")
        print(
            f"best energy point: {best.params} -> "
            f"{best.result.total_energy_j / KILO:.1f} kJ"
        )
    return 0


def _cmd_faults(args) -> int:
    from repro.errors import ConfigurationError
    from repro.faults import FaultPlan, crash_matrix, run_crash_scenario

    trace, disks = _load(args)
    plan = FaultPlan(
        seed=args.seed,
        spinup_failure_rate=args.spinup_fail_rate,
        io_error_rate=args.io_error_rate,
    )

    def row(r):
        return [
            r.write_policy,
            f"{r.crash_index}/{r.requests_total}",
            f"{r.crash_time:.1f}",
            r.acked_writes,
            r.unhomed_blocks,
            r.replayed_blocks,
            r.verdict,
        ]

    header = [
        "write policy", "crash at", "t (s)", "acked w",
        "unhomed", "replayed", "verdict",
    ]
    if args.matrix:
        reports = crash_matrix(
            trace,
            num_disks=disks,
            cache_blocks=args.cache_blocks,
            policy=args.policy,
            fault_plan=plan,
            log_region_blocks=args.log_region_blocks,
        )
        print(
            ascii_table(
                header,
                [row(r) for r in reports],
                title=f"{args.trace} — crash matrix (seed {args.seed})",
            )
        )
    else:
        if args.crash_at is None and args.crash_time is None:
            raise ConfigurationError(
                "a crash point is required: --crash-at, --crash-time, "
                "or --matrix"
            )
        reports = [
            run_crash_scenario(
                trace,
                num_disks=disks,
                cache_blocks=args.cache_blocks,
                policy=args.policy,
                write_policy=args.write_policy,
                crash_at=args.crash_at,
                crash_time=args.crash_time,
                fault_plan=plan,
                log_region_blocks=args.log_region_blocks,
            )
        ]
        print(
            ascii_table(
                header,
                [row(r) for r in reports],
                title=f"{args.trace} — crash scenario (seed {args.seed})",
            )
        )
        r = reports[0]
        if r.lost:
            for disk, blocks in sorted(r.lost.items()):
                shown = ", ".join(map(str, blocks[:8]))
                more = f" (+{len(blocks) - 8} more)" if len(blocks) > 8 else ""
                print(f"  disk {disk}: lost blocks {shown}{more}")
    broken = [r for r in reports if r.persistency_expected and not r.zero_loss]
    if broken:
        print(
            f"FAIL: {len(broken)} scenario(s) lost acknowledged writes "
            "under a persistent write policy"
        )
        return 1
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import json

    from repro.errors import ConfigurationError
    from repro.serve.daemon import ServeConfig, serve_until_drained
    from repro.serve.loadgen import LoadConfig, run_load

    if args.load_gen:
        if not args.tcp_port:
            raise ConfigurationError(
                "--load-gen needs --tcp-port of a running daemon"
            )
        report = asyncio.run(
            run_load(
                LoadConfig(
                    host=args.host,
                    port=args.tcp_port,
                    users=args.users,
                    requests=args.requests,
                    workload=args.workload,
                    num_disks=args.disks,
                    seed=args.seed,
                    pace_s=args.pace,
                    explicit_time_base=args.explicit_time_base,
                )
            )
        )
        print(json.dumps(report.to_dict(), sort_keys=True))
        return 1 if report.errors else 0

    if args.policy in ("belady", "opg"):
        raise ConfigurationError(
            f"offline policy {args.policy!r} needs the whole trace up "
            "front and cannot serve live requests"
        )
    config = ServeConfig(
        host=args.host,
        tcp_port=args.tcp_port,
        http_port=args.http_port,
        time_dilation=args.time_dilation,
        queue_capacity=args.queue_capacity,
        batch_max=args.batch_max,
        tick_interval_s=args.tick_interval,
        feed_delay_s=args.feed_delay,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        restore_path=args.restore,
        session_params={
            "policy": args.policy,
            "num_disks": args.disks,
            "cache_blocks": args.cache_blocks,
            "dpm": args.dpm,
            "write_policy": args.write_policy,
            "prefetch_depth": args.prefetch_depth,
        },
    )
    daemon = asyncio.run(serve_until_drained(config))
    return daemon.exit_code


def _cmd_bench(args) -> int:
    from repro.bench import main as bench_main

    return bench_main(args)


def _cmd_check(args) -> int:
    from repro.check.runner import main as check_main

    return check_main(args)


_COMMANDS = {
    "info": _cmd_info,
    "generate": _cmd_generate,
    "trace": _cmd_trace,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "reproduce": _cmd_reproduce,
    "campaign": _cmd_campaign,
    "faults": _cmd_faults,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "check": _cmd_check,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        return 0
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
