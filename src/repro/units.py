"""Units, constants, and small numeric helpers.

The library uses plain floats with fixed base units everywhere:

* time    — seconds
* energy  — joules
* power   — watts
* size    — bytes (block counts are plain ints)

This module centralizes the conversion factors and a couple of tolerant
float comparisons used by the simulators. Keeping the conversions in one
place makes unit mistakes greppable.
"""

from __future__ import annotations

import math

# --- size -----------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Default cache/disk block size used throughout the paper's experiments.
DEFAULT_BLOCK_SIZE = 8 * KIB

#: Sector size assumed by the disk geometry model.
SECTOR_SIZE = 512

# --- scale prefixes -------------------------------------------------------

#: Decimal prefixes for *display* conversions (J -> kJ/MJ, req/s ->
#: kreq/s). Divide a base-unit value by these; never fold the raw
#: literal into call sites (the ``units`` checker flags that).
KILO = 1e3
MEGA = 1e6

# --- time -----------------------------------------------------------------

MS = 1e-3
US = 1e-6
MINUTE = 60.0
HOUR = 3600.0

#: Sub-second counts per second, for displaying/quantizing seconds as
#: milli/microseconds: ``value_s * MS_PER_S``. Kept distinct from
#: dividing by :data:`MS`/:data:`US` so existing call sites keep their
#: exact floating-point operation (bit-identical results).
MS_PER_S = 1000.0
US_PER_S = 1e6

#: Tolerance used when comparing simulation timestamps for equality.
TIME_EPS = 1e-9


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MS


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MS


def rpm_to_period(rpm: float) -> float:
    """Return the rotation period in seconds for a spindle speed in RPM.

    Raises :class:`ValueError` for non-positive speeds because a stopped
    spindle has no rotation period.
    """
    if rpm <= 0:
        raise ValueError(f"rotation period undefined for rpm={rpm!r}")
    return 60.0 / rpm


def approx_equal(a: float, b: float, tol: float = 1e-9) -> bool:
    """Tolerant float equality, absolute + relative."""
    return math.isclose(a, b, rel_tol=tol, abs_tol=tol)


def non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite, non-negative number.

    Returns the value so it can be used inline in constructors.
    """
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return value


def positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite, strictly positive number."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be finite and > 0, got {value!r}")
    return value
