"""CacheSim: the storage cache, replacement policies, and write policies.

The storage cache sits between the application trace and the disk array
(Figure 1 of the paper). Its replacement policy decides *which* blocks
miss, and therefore *when* each disk sees requests — the lever the whole
paper is about. Write policies decide when dirty data reaches disk.
"""

from repro.cache.block import BlockState
from repro.cache.cache import AccessResult, StorageCache
from repro.cache.stats import CacheStats

__all__ = ["AccessResult", "BlockState", "CacheStats", "StorageCache"]
