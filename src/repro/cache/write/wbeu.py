"""Write-back with eager update (WBEU, Section 6).

Write-back, plus two flush triggers:

* when a disk becomes active because of a read miss, all of its dirty
  blocks are flushed immediately — the writes ride on a spin-up that
  was already paid for;
* if a parked disk accumulates more than ``dirty_threshold`` dirty
  blocks, it is forced active and flushed, bounding both cache
  pollution and the window of unpersisted data.
"""

from __future__ import annotations

from repro.cache.block import BlockKey, BlockState
from repro.cache.write.base import WritePolicy
from repro.errors import ConfigurationError


class WBEUPolicy(WritePolicy):
    """Write-back with eager updates on disk activation."""

    name = "WBEU"

    def __init__(self, dirty_threshold: int = 1024) -> None:
        super().__init__()
        if dirty_threshold < 1:
            raise ConfigurationError(
                f"dirty_threshold must be >= 1, got {dirty_threshold}"
            )
        self.dirty_threshold = dirty_threshold
        self.forced_flushes = 0
        self.eager_flushes = 0

    def on_write(self, key: BlockKey, time: float) -> float:
        self._require_attached()
        self.cache.mark_dirty(key)
        disk_id = key[0]
        if self.cache.dirty_count(disk_id) >= self.dirty_threshold:
            # Force the disk up and drain — the paper's backstop against
            # a permanently-sleeping disk swallowing the whole cache.
            self.forced_flushes += 1
            self._flush_disk(disk_id, time)
        return 0.0

    def on_evicted(self, key: BlockKey, state: BlockState, time: float) -> None:
        if not state.dirty:
            return
        disk_id = key[0]
        was_parked = self.array[disk_id].is_parked(time)
        self._write_to_disk(key, time)
        if was_parked and self.cache.dirty_count(disk_id):
            # The eviction just paid this disk's spin-up: eagerly ride
            # it with every other dirty block the disk owns.
            self.eager_flushes += 1
            self._flush_disk(disk_id, time)

    def after_read_wake(self, disk_id: int, time: float, woke: bool) -> None:
        if woke and self.cache.dirty_count(disk_id):
            self.eager_flushes += 1
            self._flush_disk(disk_id, time)

    def _flush_disk(self, disk_id: int, time: float) -> None:
        """Write every dirty block of ``disk_id`` back, in block order."""
        for key in self.cache.dirty_blocks(disk_id):
            self._write_to_disk(key, time)
            self.cache.mark_clean(key)

    def pending_dirty(self) -> int:
        self._require_attached()
        return sum(
            self.cache.dirty_count(d.disk_id) for d in self.array.disks
        )
