"""Write-through with deferred update (WTDU, Section 6).

Write-through's persistency without its spin-ups: a write whose home
disk is parked goes to the always-active log device instead, stamped
into the disk's log region; the cache copy is marked *logged* (and
thereby pinned — the log is never read outside crash recovery, so the
cached copy is the only fast copy). When the disk becomes active —
because of a read miss, or because its log region filled and forces a
flush — all logged blocks are written home before any new writes, the
region timestamp is bumped, and the pins drop.

Writes whose home disk is already spinning simply write through.
"""

from __future__ import annotations

from repro.cache.block import BlockKey
from repro.cache.write.base import WritePolicy
from repro.cache.write.log_region import LogDevice
from repro.errors import ConfigurationError


class WTDUPolicy(WritePolicy):
    """Write-through with deferred updates via a log device."""

    name = "WTDU"

    # logged blocks are pinned until flushed back to their home disk
    pins_blocks = True

    def __init__(
        self, log_device: LogDevice, max_pinned_fraction: float = 0.5
    ) -> None:
        super().__init__()
        if not 0.0 < max_pinned_fraction <= 1.0:
            raise ConfigurationError(
                "max_pinned_fraction must be in (0, 1], got "
                f"{max_pinned_fraction}"
            )
        self.log = log_device
        self.max_pinned_fraction = max_pinned_fraction
        self.deferred_writes = 0
        self.forced_flushes = 0

    def set_probe(self, probe) -> None:
        """Also wire the log device, so appends/flushes are traced."""
        super().set_probe(probe)
        self.log.probe = probe

    def _pinned_pressure(self) -> bool:
        """Logged (pinned) blocks approaching cache capacity?

        Pinned blocks are unevictable; without this backstop a write-
        only workload would fill the cache with them and wedge it.
        """
        capacity = self.cache.capacity
        if capacity is None:
            return False
        return self.cache.pinned_count >= capacity * self.max_pinned_fraction

    def on_write(self, key: BlockKey, time: float) -> float:
        self._require_attached()
        disk_id = key[0]
        if self._pinned_pressure():
            # Drain the disk holding the most deferred data. Only disks
            # with logged blocks are candidates: flushing a clean disk
            # would spin nothing down in pressure and (worse) bump its
            # empty log region's epoch. Pressure without any dirty disk
            # means the pins belong to another policy's bookkeeping —
            # nothing for us to drain.
            candidates = [
                d.disk_id
                for d in self.array.disks
                if self.cache.dirty_count(d.disk_id)
            ]
            if candidates:
                victim_disk = max(candidates, key=self.cache.dirty_count)
                self.forced_flushes += 1
                self._flush_disk(victim_disk, time)
        if self.array[disk_id].is_parked(time):
            if self.log.region_full(disk_id):
                # Region exhausted: pay the spin-up, drain, then log anew.
                self.forced_flushes += 1
                self._flush_disk(disk_id, time)
                return self._write_to_disk(key, time)
            latency = self.log.append(disk_id, key, time)
            self.cache.mark_logged(key)
            self.deferred_writes += 1
            return latency
        # Disk is spinning. Drain any leftovers first so the log region
        # never holds data older than what we write through now.
        if self.cache.dirty_count(disk_id):
            self._flush_disk(disk_id, time)
        return self._write_to_disk(key, time)

    def after_read_wake(self, disk_id: int, time: float, woke: bool) -> None:
        if woke and self.cache.dirty_count(disk_id):
            self._flush_disk(disk_id, time)

    def _flush_disk(self, disk_id: int, time: float) -> None:
        """Write all logged blocks home and retire the log epoch.

        An empty region is left alone: flushing it would bump the
        timestamp for no reason, and a timestamp that only advances on
        non-empty flushes keeps the epoch a faithful count of real
        drain events (recovery correctness does not depend on it, but
        the observability/accounting does).
        """
        for key in self.cache.dirty_blocks(disk_id):
            self._write_to_disk(key, time)
            self.cache.mark_clean(key)
        if self.log.regions[disk_id].used:
            self.log.flush(disk_id, time)

    def pending_dirty(self) -> int:
        self._require_attached()
        return sum(
            self.cache.dirty_count(d.disk_id) for d in self.array.disks
        )

    @property
    def extra_energy_j(self) -> float:
        """Incremental log-device energy (charged to WTDU's totals)."""
        return self.log.energy_j
