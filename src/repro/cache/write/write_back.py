"""Write-back: dirty blocks reach disk only when evicted."""

from __future__ import annotations

from repro.cache.block import BlockKey, BlockState
from repro.cache.write.base import WritePolicy


class WriteBackPolicy(WritePolicy):
    """WB — fewest disk writes, weakest persistency.

    Writes complete at cache speed; the dirty block is persisted when
    the replacement policy pushes it out. A dirty eviction aimed at a
    parked disk pays that disk's spin-up — the failure mode WBEU fixes.
    """

    name = "write-back"

    def on_write(self, key: BlockKey, time: float) -> float:
        cache = self.cache
        if cache is None or self.array is None:
            self._require_attached()
        cache.mark_dirty(key)
        return 0.0

    def on_evicted(self, key: BlockKey, state: BlockState, time: float) -> None:
        if state.dirty:
            self._write_to_disk(key, time)

    def pending_dirty(self) -> int:
        self._require_attached()
        return sum(
            self.cache.dirty_count(d.disk_id) for d in self.array.disks
        )
