"""Storage cache write policies (Section 6 of the paper).

Four policies, ordered by how aggressively they defer disk writes:

* :class:`WriteThroughPolicy` (WT) — every write goes to disk
  immediately; strongest persistency, most disk activity.
* :class:`WriteBackPolicy` (WB) — dirty blocks written only on
  eviction; fewest writes, weakest persistency.
* :class:`WBEUPolicy` (write-back with eager update) — write-back, plus
  all of a disk's dirty blocks are flushed whenever that disk becomes
  active, so the writes piggyback on an already-paid spin-up.
* :class:`WTDUPolicy` (write-through with deferred update) — writes for
  parked disks go to an always-active log device (timestamped log
  regions with crash recovery), preserving WT-comparable persistency
  while letting data disks sleep.
"""

from repro.cache.write.base import WritePolicy
from repro.cache.write.log_region import LogDevice, LogRegion
from repro.cache.write.periodic import PeriodicFlushPolicy
from repro.cache.write.wbeu import WBEUPolicy
from repro.cache.write.write_back import WriteBackPolicy
from repro.cache.write.write_through import WriteThroughPolicy
from repro.cache.write.wtdu import WTDUPolicy

__all__ = [
    "LogDevice",
    "LogRegion",
    "PeriodicFlushPolicy",
    "WBEUPolicy",
    "WriteBackPolicy",
    "WritePolicy",
    "WriteThroughPolicy",
    "WTDUPolicy",
]
