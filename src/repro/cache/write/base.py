"""Write policy interface.

A write policy reacts to three engine events:

* ``on_write(key, time)`` — a write access just landed in the cache
  (the cache insert, including write-allocate on a miss, has already
  happened). Returns the latency the *client* observes beyond the
  cache access itself (e.g. the synchronous disk write of WT).
* ``on_evicted(key, state, time)`` — a block left the cache; if its
  state is dirty the policy must persist it now.
* ``after_read_wake(disk_id, time, woke)`` — a read miss was just
  serviced on ``disk_id``; ``woke`` says whether the miss spun the disk
  up from a parked state. WBEU/WTDU use this to piggyback flushes on
  the already-paid spin-up.

Policies receive the cache and disk array via :meth:`attach` before the
run starts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cache.block import BlockKey, BlockState
from repro.cache.cache import StorageCache
from repro.disk.array import DiskArray
from repro.errors import SimulationError
from repro.observe.events import DirtyFlush


class WritePolicy(ABC):
    """Strategy interface for handling writes."""

    name: str = "base"

    #: Whether the policy may pin cache blocks (``cache.mark_logged``).
    #: Fused engine loops that inline eviction without the pinned-block
    #: fallback gate on this; a subclass that starts pinning must set
    #: it ``True`` or evictions could target pinned blocks.
    pins_blocks: bool = False

    def __init__(self) -> None:
        self.cache: StorageCache | None = None
        self.array: DiskArray | None = None
        #: Disk writes issued by this policy (reporting).
        self.disk_writes = 0
        #: Callback (disk_id, time) invoked for every disk write, so
        #: power-aware replacement policies can track disk activity.
        self.activity_listener = None
        #: Optional event hook (see :mod:`repro.observe`); emits a
        #: :class:`DirtyFlush` for every physical home-disk write.
        self.probe = None

    def set_probe(self, probe) -> None:
        """Wire the observability hook (subclasses may propagate it)."""
        self.probe = probe

    def attach(
        self,
        cache: StorageCache,
        array: DiskArray,
        activity_listener=None,
    ) -> None:
        """Wire the policy to the run's cache and disk array."""
        self.cache = cache
        self.array = array
        self.activity_listener = activity_listener

    def _require_attached(self) -> None:
        if self.cache is None or self.array is None:
            raise SimulationError(f"{self.name}: write policy not attached")

    @abstractmethod
    def on_write(self, key: BlockKey, time: float) -> float:
        """Handle a write access; return extra client-visible latency."""

    def on_evicted(self, key: BlockKey, state: BlockState, time: float) -> None:
        """Handle an evicted block (default: nothing to persist)."""

    def after_read_wake(self, disk_id: int, time: float, woke: bool) -> None:
        """A read miss was serviced on ``disk_id`` (default: no-op)."""

    def pending_dirty(self) -> int:
        """Blocks whose latest data has not reached their home disk."""
        return 0

    def _write_to_disk(self, key: BlockKey, time: float) -> float:
        """Issue the physical write; returns its response time."""
        if self.cache is None or self.array is None:
            self._require_attached()
        disk, block = key
        response_time, _ = self.array.submit_quick(disk, time, block, True)
        self.disk_writes += 1
        if self.probe is not None:
            self.probe(DirtyFlush(time, disk, block))
        if self.activity_listener is not None:
            self.activity_listener(disk, time)
        return response_time
