"""Write-back with periodic flushing (a pdflush-style baseline).

Production storage rarely runs pure write-back — dirty data is
typically bounded by a flush daemon that writes it home every few
seconds or minutes. This policy rounds out the paper's write-policy
spectrum between WB (unbounded exposure, fewest writes) and WT (zero
exposure, most writes): the ``flush_interval_s`` knob trades the age of
unpersisted data against the spin-ups the flushes cost.

The flush clock is driven lazily by write/read activity (the engine is
trace-driven, so there are no timers): each event whose timestamp has
passed the deadline triggers a sweep of every disk's dirty blocks.
"""

from __future__ import annotations

from repro.cache.block import BlockKey, BlockState
from repro.cache.write.base import WritePolicy
from repro.errors import ConfigurationError


class PeriodicFlushPolicy(WritePolicy):
    """Write-back bounded by a periodic flush sweep.

    Args:
        flush_interval_s: Maximum time between flush sweeps (the upper
            bound on how long an acknowledged write stays volatile,
            modulo the lazy clock advancing only on activity).
    """

    name = "periodic-flush"

    def __init__(self, flush_interval_s: float = 30.0) -> None:
        super().__init__()
        if flush_interval_s <= 0:
            raise ConfigurationError(
                f"flush_interval_s must be > 0, got {flush_interval_s}"
            )
        self.flush_interval_s = flush_interval_s
        self._next_flush: float | None = None
        self.flush_sweeps = 0

    def _maybe_flush(self, time: float) -> None:
        if self._next_flush is None:
            self._next_flush = time + self.flush_interval_s
            return
        if time < self._next_flush:
            return
        self.flush_sweeps += 1
        for disk in self.array.disks:
            for key in self.cache.dirty_blocks(disk.disk_id):
                self._write_to_disk(key, time)
                self.cache.mark_clean(key)
        # schedule relative to now — a long quiet period produces one
        # catch-up sweep, not a burst of overdue ones
        self._next_flush = time + self.flush_interval_s

    def on_write(self, key: BlockKey, time: float) -> float:
        self._require_attached()
        self._maybe_flush(time)
        self.cache.mark_dirty(key)
        return 0.0

    def on_evicted(self, key: BlockKey, state: BlockState, time: float) -> None:
        if state.dirty:
            self._write_to_disk(key, time)

    def after_read_wake(self, disk_id: int, time: float, woke: bool) -> None:
        self._maybe_flush(time)

    def pending_dirty(self) -> int:
        self._require_attached()
        return sum(
            self.cache.dirty_count(d.disk_id) for d in self.array.disks
        )
