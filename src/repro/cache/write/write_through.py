"""Write-through: every write is synchronously committed to disk."""

from __future__ import annotations

from repro.cache.block import BlockKey
from repro.cache.write.base import WritePolicy


class WriteThroughPolicy(WritePolicy):
    """WT — the paper's persistency baseline.

    The client is not acknowledged until the block is on disk, so the
    write's disk response time (including any spin-up the write
    triggers) is client-visible latency. Cached copies stay clean, so
    evictions never write.
    """

    name = "write-through"

    def on_write(self, key: BlockKey, time: float) -> float:
        return self._write_to_disk(key, time)
