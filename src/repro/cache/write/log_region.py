"""The WTDU log device: timestamped per-disk log regions with recovery.

Section 6 of the paper: the log space is divided into one region per
data disk. The first block of a region holds the region's current
timestamp; every logged block is stamped with the timestamp in force
when it was appended. Flushing a region (after its disk spins up and
the cached copies are written home) increments the region timestamp and
resets the free pointer — the old entries remain physically present but
are logically dead, because crash recovery only replays entries whose
stamp equals the region timestamp.

The log device itself is modelled as an always-active sequential
device (NVRAM or a dedicated log disk — databases keep one spinning for
commit latency anyway). Only the *incremental* energy of log writes is
charged, as in the paper; the device's baseline idle energy is common
to all policies and excluded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.block import BlockKey
from repro.errors import ConfigurationError, RecoveryError
from repro.observe.events import LogAppend, LogFlush


@dataclass
class _Slot:
    key: BlockKey
    stamp: int


class LogRegion:
    """One disk's log region.

    Slots are overwritten in place across epochs, mimicking the on-disk
    layout; :meth:`recover` reconstructs the replay set exactly the way
    the paper's recovery process does — by comparing slot stamps to the
    region timestamp stored in the region's first block.
    """

    def __init__(self, capacity_blocks: int) -> None:
        if capacity_blocks < 1:
            raise ConfigurationError(
                f"log region capacity must be >= 1, got {capacity_blocks}"
            )
        self.capacity = capacity_blocks
        self.timestamp = 0
        self._slots: list[_Slot | None] = [None] * capacity_blocks
        self._free = 0

    @property
    def used(self) -> int:
        return self._free

    @property
    def is_full(self) -> bool:
        return self._free >= self.capacity

    def append(self, key: BlockKey) -> None:
        """Log one block write. Raises if the region is full — the
        caller must flush first."""
        if self.is_full:
            raise RecoveryError("log region full; flush before appending")
        self._slots[self._free] = _Slot(key=key, stamp=self.timestamp)
        self._free += 1

    def flush(self) -> None:
        """The disk's cached copies were written home: retire the epoch."""
        self.timestamp += 1
        self._free = 0  # old slots stay, logically dead

    def recover(self) -> list[BlockKey]:
        """Replay set after a crash: blocks whose stamp matches the
        region timestamp (their home-disk write may not have happened).

        Later entries win for duplicate keys, preserving write order.
        """
        pending: dict[BlockKey, None] = {}
        for slot in self._slots:
            if slot is not None and slot.stamp == self.timestamp:
                pending.pop(slot.key, None)
                pending[slot.key] = None
        return list(pending)


class LogDevice:
    """Always-active sequential log with one region per data disk.

    Args:
        num_disks: Data disks served (one region each).
        region_capacity_blocks: Slots per region.
        write_latency_s: Client-visible latency of one log append
            (sequential write on an active device — sub-millisecond).
        write_energy_j: Incremental energy charged per append.
        probe: Optional event hook (see :mod:`repro.observe`); emits
            :class:`LogAppend` / :class:`LogFlush` events when the
            caller supplies timestamps.
    """

    def __init__(
        self,
        num_disks: int,
        region_capacity_blocks: int = 4096,
        write_latency_s: float = 0.5e-3,
        write_energy_j: float = 13.5 * 0.5e-3,
        probe=None,
    ) -> None:
        if num_disks < 1:
            raise ConfigurationError(f"num_disks must be >= 1, got {num_disks}")
        self.regions = [
            LogRegion(region_capacity_blocks) for _ in range(num_disks)
        ]
        self.write_latency_s = write_latency_s
        self.write_energy_j = write_energy_j
        self.probe = probe
        self.appends = 0
        self.energy_j = 0.0

    def append(self, disk_id: int, key: BlockKey, time: float = 0.0) -> float:
        """Log a write for ``disk_id``; returns client latency."""
        self.regions[disk_id].append(key)
        self.appends += 1
        self.energy_j += self.write_energy_j
        if self.probe is not None:
            self.probe(LogAppend(time, disk_id, key[1]))
        return self.write_latency_s

    def region_full(self, disk_id: int) -> bool:
        return self.regions[disk_id].is_full

    def flush(self, disk_id: int, time: float = 0.0) -> None:
        retired = self.regions[disk_id].used
        self.regions[disk_id].flush()
        if self.probe is not None:
            self.probe(LogFlush(time, disk_id, retired))

    def recover_all(self) -> dict[int, list[BlockKey]]:
        """Crash recovery across every region (disk_id -> replay set)."""
        return {
            disk_id: region.recover()
            for disk_id, region in enumerate(self.regions)
        }
