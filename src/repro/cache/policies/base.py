"""Replacement policy interface.

The cache drives a policy through a strict contract:

1. ``on_access(key, time, hit)`` — exactly once per block access, in
   trace order, for hits and misses alike.
2. ``on_insert(key, time)`` — after a miss's ``on_access``, once the
   block enters the cache (post-eviction).
3. ``evict(time)`` — the cache needs a victim; must return a currently
   resident key. May be called multiple times per insertion if a victim
   turns out to be pinned (the cache re-inserts pinned victims via
   ``on_insert``).
4. ``on_remove(key)`` — a block left the cache (eviction the policy
   chose, or external invalidation). The policy must forget it.

Offline policies additionally receive the complete access sequence via
:meth:`OfflinePolicy.prepare` before the run starts; the sequence they
are prepared with must match the ``on_access`` stream exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.cache.block import BlockKey
from repro.errors import PolicyError


class ReplacementPolicy(ABC):
    """Strategy interface for cache replacement."""

    #: Human-readable policy name, used in reports.
    name: str = "base"

    @abstractmethod
    def on_access(self, key: BlockKey, time: float, hit: bool) -> None:
        """Record one access (hit or miss), in trace order."""

    @abstractmethod
    def on_insert(self, key: BlockKey, time: float) -> None:
        """A block entered the cache (after a miss, or re-insert of a
        pinned victim)."""

    @abstractmethod
    def evict(self, time: float) -> BlockKey:
        """Choose and forget a victim. Must raise
        :class:`~repro.errors.PolicyError` if the policy tracks no
        blocks."""

    @abstractmethod
    def on_remove(self, key: BlockKey) -> None:
        """Forget ``key`` (external removal)."""

    def note_disk_activity(self, disk_id: int, time: float) -> None:
        """The engine observed a disk access outside the read-miss path
        (write-through writes, dirty-eviction write-backs, eager
        flushes). Power-aware policies refine their model of when each
        disk is active; others ignore it."""

    def __len__(self) -> int:  # pragma: no cover - overridden where used
        raise NotImplementedError


class OfflinePolicy(ReplacementPolicy):
    """Base for policies that need the future (Belady, OPG).

    Subclasses call :meth:`_advance` once per ``on_access`` to keep the
    cursor into the prepared sequence synchronized, and read
    ``self._next_pos`` / ``self._times`` for future knowledge.
    """

    #: Attributes :meth:`prepare_columnar` defers (see ``__getattr__``).
    _LAZY_ATTRS = ("_times", "_keys", "_next_pos", "_first_pos")

    def __init__(self) -> None:
        self._prepared = False
        self._cursor = 0
        self._lazy_cols: tuple | None = None
        self._times: list[float] = []
        self._keys: list[BlockKey] = []
        self._next_pos: list[int] = []
        self._next_time: list[float] = []

    def prepare(self, accesses: Iterable[tuple[float, BlockKey]]) -> None:
        """Load the full future access sequence.

        Args:
            accesses: ``(time, key)`` pairs in the exact order the cache
                will issue ``on_access`` calls. Any iterable works —
                streaming one (see
                :func:`repro.traces.record.iter_accesses`) avoids ever
                materializing the flattened access list.
        """
        times: list[float] = []
        keys: list[BlockKey] = []
        times_append = times.append
        keys_append = keys.append
        for t, k in accesses:
            times_append(t)
            keys_append(k)
        n = len(keys)
        self._times = times
        self._keys = keys
        inf = float("inf")
        self._next_pos = [n] * n
        self._next_time = [inf] * n
        last_seen: dict[BlockKey, int] = {}
        for i in range(n - 1, -1, -1):
            key = self._keys[i]
            nxt = last_seen.get(key, n)
            self._next_pos[i] = nxt
            self._next_time[i] = self._times[nxt] if nxt < n else inf
            last_seen[key] = i
        self._first_pos = last_seen  # first occurrence of each key
        self._lazy_cols = None
        self._cursor = 0
        self._prepared = True

    def prepare_columnar(self, trace) -> bool:
        """Vectorized :meth:`prepare` over a
        :class:`~repro.traces.columnar.ColumnarTrace`.

        Builds exactly the state :meth:`prepare` would — same lists,
        same floats — but derives the next-occurrence arrays with one
        stable lexsort (:func:`repro.core.kernels.next_access_arrays`)
        instead of the reverse Python loop. Returns ``True`` when the
        vectorized path ran; falls back to :meth:`prepare` over the
        expanded access stream (and returns ``False``) when numpy is
        unavailable or the trace has multi-block requests (whose
        per-block expansion the kernels do not model).

        Only ``_next_time`` is materialized as a Python list eagerly
        (the fused loops iterate it directly); ``_times``, ``_keys``,
        ``_next_pos`` and ``_first_pos`` are built on first attribute
        access via ``__getattr__`` — the fused engine loops never read
        them, and at a million requests each deferred ``tolist`` or
        dict build saves hundreds of milliseconds of boxing.
        """
        from repro.core import kernels

        if not kernels.have_numpy() or (
            len(trace) and not bool((trace.nblocks == 1).all())
        ):
            self.prepare(trace.iter_accesses())
            return False
        next_pos, next_time, first_mask = kernels.next_access_arrays(
            trace.disks, trace.blocks, trace.times
        )
        for name in self._LAZY_ATTRS:
            self.__dict__.pop(name, None)
        self._lazy_cols = (trace.disks, trace.blocks, trace.times, next_pos)
        self._next_time = next_time.tolist()
        self._first_mask = first_mask
        self._cursor = 0
        self._prepared = True
        return True

    def __getattr__(self, name: str):
        # Deferred materialization of the columnar-prepare products the
        # fused loops never touch. Scalar paths (``_advance``, Belady's
        # ``_next_pos`` reads, OPG's scalar seeding) hit this once per
        # attribute; the result is cached as a plain instance attribute
        # so subsequent lookups bypass ``__getattr__`` entirely.
        cols = self.__dict__.get("_lazy_cols")
        if cols is None or name not in OfflinePolicy._LAZY_ATTRS:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        disks, blocks, times, next_pos = cols
        if name == "_times":
            value = times.tolist()
        elif name == "_keys":
            value = list(zip(disks.tolist(), blocks.tolist()))
        elif name == "_next_pos":
            value = next_pos.tolist()
        else:  # _first_pos
            keys = self._keys  # may itself materialize lazily
            value = {
                keys[i]: i for i in self._first_mask.nonzero()[0].tolist()
            }
        setattr(self, name, value)
        return value

    @property
    def prepared(self) -> bool:
        return self._prepared

    def _advance(self, key: BlockKey) -> int:
        """Consume one access; returns its position in the sequence.

        Raises:
            PolicyError: If the policy was not prepared, the sequence is
                exhausted, or the access does not match the prepared
                sequence (which would silently corrupt future
                knowledge).
        """
        if not self._prepared:
            raise PolicyError(
                f"{self.name}: offline policy used without prepare()"
            )
        i = self._cursor
        if i >= len(self._keys):
            raise PolicyError(f"{self.name}: access beyond prepared sequence")
        if self._keys[i] != key:
            raise PolicyError(
                f"{self.name}: access #{i} is {key}, but the prepared "
                f"sequence expects {self._keys[i]}"
            )
        self._cursor = i + 1
        return i
