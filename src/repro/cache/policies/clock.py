"""CLOCK (second-chance) replacement."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.block import BlockKey
from repro.cache.policies.base import ReplacementPolicy
from repro.errors import PolicyError


class ClockPolicy(ReplacementPolicy):
    """One-bit CLOCK: hits set the reference bit; eviction sweeps the
    ring, clearing bits until it finds an unreferenced block."""

    name = "CLOCK"

    def __init__(self) -> None:
        # OrderedDict as the ring: the front is the clock hand.
        self._ring: OrderedDict[BlockKey, bool] = OrderedDict()

    def on_access(self, key: BlockKey, time: float, hit: bool) -> None:
        if hit and key in self._ring:
            self._ring[key] = True

    def on_insert(self, key: BlockKey, time: float) -> None:
        self._ring[key] = False
        self._ring.move_to_end(key)

    def evict(self, time: float) -> BlockKey:
        if not self._ring:
            raise PolicyError("CLOCK: evict from empty ring")
        while True:
            key, referenced = next(iter(self._ring.items()))
            if referenced:
                # second chance: clear the bit, rotate behind the hand
                self._ring[key] = False
                self._ring.move_to_end(key)
            else:
                del self._ring[key]
                return key

    def on_remove(self, key: BlockKey) -> None:
        self._ring.pop(key, None)

    def __len__(self) -> int:
        return len(self._ring)
