"""Replacement policies.

Online policies: LRU, FIFO, CLOCK, ARC, MQ, LIRS, and the power-aware
wrapper (PA-LRU and friends, in :mod:`repro.core.pa`). Offline
policies: Belady's MIN and the paper's OPG (in :mod:`repro.core.opg`).
:func:`make_policy` builds any of them by name.
"""

from repro.cache.policies.arc import ARCPolicy
from repro.cache.policies.base import OfflinePolicy, ReplacementPolicy
from repro.cache.policies.belady import BeladyPolicy
from repro.cache.policies.clock import ClockPolicy
from repro.cache.policies.fifo import FIFOPolicy
from repro.cache.policies.lirs import LIRSPolicy
from repro.cache.policies.lru import LRUPolicy
from repro.cache.policies.mq import MQPolicy

__all__ = [
    "ARCPolicy",
    "BeladyPolicy",
    "ClockPolicy",
    "FIFOPolicy",
    "LIRSPolicy",
    "LRUPolicy",
    "MQPolicy",
    "OfflinePolicy",
    "ReplacementPolicy",
]
