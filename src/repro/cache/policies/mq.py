"""MQ — the Multi-Queue replacement algorithm (Zhou, Philbin & Li,
USENIX'01).

Designed for exactly the second-level storage caches this paper
targets; cited by the paper as combinable with the PA technique. Blocks
are filed into ``m`` LRU queues by access frequency (queue
``min(log2(f), m-1)``); a block that stays untouched past ``life_time``
accesses is demoted one queue. Evicted identities go to the ``q_out``
ghost so a quickly-refetched block resumes its old frequency.

Logical time here is the access count — the units the original paper
uses for its lifeTime parameter.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cache.block import BlockKey
from repro.cache.policies.base import ReplacementPolicy
from repro.errors import ConfigurationError, PolicyError


@dataclass(slots=True)
class _Entry:
    frequency: int
    expire: int  # logical (access-count) expiry for demotion
    queue: int


class MQPolicy(ReplacementPolicy):
    """Multi-Queue replacement.

    Args:
        capacity: Cache size in blocks (bounds the ghost queue).
        num_queues: Number of frequency levels (the paper's ``m``).
        life_time: Accesses a block may sit unreferenced before being
            demoted one level. Defaults to ``capacity`` accesses, a
            reasonable stand-in for the paper's peak temporal distance.
        qout_factor: Ghost capacity as a multiple of ``capacity``.
    """

    name = "MQ"

    def __init__(
        self,
        capacity: int,
        num_queues: int = 8,
        life_time: int | None = None,
        qout_factor: int = 4,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"MQ capacity must be >= 1, got {capacity}")
        if num_queues < 1:
            raise ConfigurationError("MQ needs at least one queue")
        self.m = num_queues
        self.life_time = life_time if life_time is not None else capacity
        self.qout_capacity = max(1, qout_factor * capacity)
        self._queues: list[OrderedDict[BlockKey, None]] = [
            OrderedDict() for _ in range(num_queues)
        ]
        self._entries: dict[BlockKey, _Entry] = {}
        self._qout: OrderedDict[BlockKey, int] = OrderedDict()  # key -> freq
        self._now = 0  # logical time in accesses
        self._size = 0

    # -- internals ----------------------------------------------------------

    def _level(self, frequency: int) -> int:
        return min(frequency.bit_length() - 1, self.m - 1)

    def _enqueue(self, key: BlockKey, entry: _Entry) -> None:
        entry.queue = self._level(entry.frequency)
        entry.expire = self._now + self.life_time
        self._queues[entry.queue][key] = None

    def _adjust(self) -> None:
        """Demote expired queue heads one level (the MQ Adjust step)."""
        for level in range(self.m - 1, 0, -1):
            queue = self._queues[level]
            if not queue:
                continue
            head = next(iter(queue))
            entry = self._entries[head]
            if entry.expire < self._now:
                del queue[head]
                entry.queue = level - 1
                entry.expire = self._now + self.life_time
                self._queues[level - 1][head] = None

    # -- policy contract -------------------------------------------------------

    def on_access(self, key: BlockKey, time: float, hit: bool) -> None:
        self._now += 1
        if hit:
            entry = self._entries.get(key)
            if entry is None:
                raise PolicyError(f"MQ: hit on untracked block {key}")
            del self._queues[entry.queue][key]
            entry.frequency += 1
            self._enqueue(key, entry)
        self._adjust()

    def on_insert(self, key: BlockKey, time: float) -> None:
        if key in self._entries:
            # pinned-victim re-insert: refresh its position
            entry = self._entries[key]
            del self._queues[entry.queue][key]
            self._enqueue(key, entry)
            return
        frequency = self._qout.pop(key, 0) + 1
        entry = _Entry(frequency=frequency, expire=0, queue=0)
        self._entries[key] = entry
        self._enqueue(key, entry)
        self._size += 1

    def evict(self, time: float) -> BlockKey:
        for queue in self._queues:
            if queue:
                key, _ = queue.popitem(last=False)
                entry = self._entries.pop(key)
                self._size -= 1
                self._qout[key] = entry.frequency
                if len(self._qout) > self.qout_capacity:
                    self._qout.popitem(last=False)
                return key
        raise PolicyError("MQ: evict with no resident blocks")

    def on_remove(self, key: BlockKey) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._queues[entry.queue].pop(key, None)
            self._size -= 1

    def __len__(self) -> int:
        return self._size
