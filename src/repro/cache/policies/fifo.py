"""First-in-first-out replacement (insertion-order eviction)."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.block import BlockKey
from repro.cache.policies.base import ReplacementPolicy
from repro.errors import PolicyError


class FIFOPolicy(ReplacementPolicy):
    """Evicts in insertion order; hits do not refresh position."""

    name = "FIFO"

    def __init__(self) -> None:
        self._queue: OrderedDict[BlockKey, None] = OrderedDict()

    def on_access(self, key: BlockKey, time: float, hit: bool) -> None:
        pass  # FIFO ignores recency

    def on_insert(self, key: BlockKey, time: float) -> None:
        if key in self._queue:
            return  # re-insert of a pinned victim keeps original position
        self._queue[key] = None

    def evict(self, time: float) -> BlockKey:
        if not self._queue:
            raise PolicyError("FIFO: evict from empty queue")
        key, _ = self._queue.popitem(last=False)
        return key

    def on_remove(self, key: BlockKey) -> None:
        self._queue.pop(key, None)

    def __len__(self) -> int:
        return len(self._queue)
