"""ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).

One of the storage-cache policies the paper names as combinable with
its power-aware technique. ARC balances recency (T1) against frequency
(T2) using ghost lists (B1, B2) and an adaptive target ``p`` for T1's
share of the cache.

The implementation is driven by the external
:class:`~repro.cache.cache.StorageCache`: ``on_access`` updates ghosts
and adaptation, ``evict`` performs ARC's REPLACE step, and ``on_insert``
files the new block into the list chosen during its miss.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.block import BlockKey
from repro.cache.policies.base import ReplacementPolicy
from repro.errors import ConfigurationError, PolicyError


class ARCPolicy(ReplacementPolicy):
    """Adaptive Replacement Cache.

    Args:
        capacity: Cache size in blocks; must equal the
            :class:`StorageCache` capacity it serves (ARC's ghost-list
            bounds and adaptation depend on it).
    """

    name = "ARC"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"ARC capacity must be >= 1, got {capacity}")
        self.c = capacity
        self.p = 0.0  # adaptive target size of T1
        self._t1: OrderedDict[BlockKey, None] = OrderedDict()
        self._t2: OrderedDict[BlockKey, None] = OrderedDict()
        self._b1: OrderedDict[BlockKey, None] = OrderedDict()
        self._b2: OrderedDict[BlockKey, None] = OrderedDict()
        # Where the next on_insert should file its block.
        self._insert_to_t2 = False

    # -- policy contract -------------------------------------------------

    def on_access(self, key: BlockKey, time: float, hit: bool) -> None:
        if hit:
            # Any resident hit promotes to MRU of T2.
            if key in self._t1:
                del self._t1[key]
            elif key in self._t2:
                del self._t2[key]
            else:
                raise PolicyError(f"ARC: hit on untracked block {key}")
            self._t2[key] = None
            return
        # Miss: ghost hits adapt p and direct the insert to T2.
        if key in self._b1:
            delta = max(len(self._b2) / len(self._b1), 1.0)
            self.p = min(float(self.c), self.p + delta)
            del self._b1[key]
            self._insert_to_t2 = True
        elif key in self._b2:
            delta = max(len(self._b1) / len(self._b2), 1.0)
            self.p = max(0.0, self.p - delta)
            del self._b2[key]
            self._insert_to_t2 = True
        else:
            self._insert_to_t2 = False
            self._trim_ghosts()

    def _trim_ghosts(self) -> None:
        """Case IV of the ARC paper: bound the directory at 2c entries."""
        if len(self._t1) + len(self._b1) >= self.c and self._b1:
            self._b1.popitem(last=False)
        total = (
            len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
        )
        if total >= 2 * self.c and self._b2:
            self._b2.popitem(last=False)

    def on_insert(self, key: BlockKey, time: float) -> None:
        if key in self._t1 or key in self._t2:
            # Re-insert of a pinned victim: restore to T2 MRU.
            self._t1.pop(key, None)
            self._t2[key] = None
            self._t2.move_to_end(key)
            return
        if self._insert_to_t2:
            self._t2[key] = None
        else:
            self._t1[key] = None
        self._insert_to_t2 = False

    def evict(self, time: float) -> BlockKey:
        """ARC's REPLACE: victim from T1 or T2 per the target ``p``."""
        prefer_t1 = bool(self._t1) and (
            len(self._t1) > self.p
            or (self._insert_to_t2 and len(self._t1) == int(self.p))
            or not self._t2
        )
        if prefer_t1:
            key, _ = self._t1.popitem(last=False)
            self._b1[key] = None
            return key
        if self._t2:
            key, _ = self._t2.popitem(last=False)
            self._b2[key] = None
            return key
        raise PolicyError("ARC: evict with no resident blocks")

    def on_remove(self, key: BlockKey) -> None:
        self._t1.pop(key, None)
        self._t2.pop(key, None)

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)
