"""Least-recently-used replacement — the paper's baseline policy."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.block import BlockKey
from repro.cache.policies.base import ReplacementPolicy
from repro.errors import PolicyError


class LRUPolicy(ReplacementPolicy):
    """Classic LRU stack.

    ``on_access`` hits move the block to the MRU end; ``evict`` removes
    the LRU end.
    """

    name = "LRU"

    def __init__(self) -> None:
        self._stack: OrderedDict[BlockKey, None] = OrderedDict()

    def on_access(self, key: BlockKey, time: float, hit: bool) -> None:
        if hit:
            self._stack.move_to_end(key)

    def on_insert(self, key: BlockKey, time: float) -> None:
        self._stack[key] = None
        self._stack.move_to_end(key)

    def evict(self, time: float) -> BlockKey:
        if not self._stack:
            raise PolicyError("LRU: evict from empty stack")
        key, _ = self._stack.popitem(last=False)
        return key

    def on_remove(self, key: BlockKey) -> None:
        self._stack.pop(key, None)

    def __len__(self) -> int:
        return len(self._stack)
