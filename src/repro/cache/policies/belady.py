"""Belady's MIN: the offline miss-optimal replacement algorithm.

Evicts the resident block whose next reference is farthest in the
future (never-referenced-again blocks first). Minimizes the number of
misses — but, as the paper's Section 3 shows, *not* disk energy.

Implementation: the prepared access sequence gives each access's
``next_pos`` (index of the same block's next occurrence). A max-heap of
``(-next_pos, key)`` with lazy invalidation yields O(log n) evictions.
"""

from __future__ import annotations

import heapq

from repro.cache.block import BlockKey
from repro.cache.policies.base import OfflinePolicy
from repro.errors import PolicyError


class BeladyPolicy(OfflinePolicy):
    """Belady's optimal (for miss ratio) offline replacement."""

    name = "Belady"

    def __init__(self) -> None:
        super().__init__()
        # resident key -> position of its next access (len(seq) = never)
        self._next_of: dict[BlockKey, int] = {}
        self._heap: list[tuple[int, BlockKey]] = []
        # key -> position of its most recent access; lets on_insert find
        # the next use even for re-inserts of pinned eviction victims.
        self._last_access: dict[BlockKey, int] = {}

    def on_access(self, key: BlockKey, time: float, hit: bool) -> None:
        i = self._advance(key)
        self._last_access[key] = i
        if key in self._next_of:
            self._update(key, self._next_pos[i])

    def on_insert(self, key: BlockKey, time: float) -> None:
        i = self._last_access.get(key)
        if i is None:
            raise PolicyError(
                "Belady: on_insert for a key that was never accessed"
            )
        self._update(key, self._next_pos[i])

    def _update(self, key: BlockKey, next_pos: int) -> None:
        self._next_of[key] = next_pos
        heapq.heappush(self._heap, (-next_pos, key))

    def evict(self, time: float) -> BlockKey:
        while self._heap:
            neg, key = heapq.heappop(self._heap)
            if self._next_of.get(key) == -neg:
                del self._next_of[key]
                return key
            # stale entry (block re-accessed or removed) — skip
        raise PolicyError("Belady: evict with no resident blocks")

    def on_remove(self, key: BlockKey) -> None:
        self._next_of.pop(key, None)

    def __len__(self) -> int:
        return len(self._next_of)
