"""LIRS — Low Inter-reference Recency Set replacement (Jiang & Zhang,
SIGMETRICS'02).

Cited by the paper as a combinable storage-cache policy. LIRS ranks
blocks by the recency of their *previous* access (inter-reference
recency, IRR): blocks with low IRR ("LIR") occupy most of the cache;
high-IRR blocks ("HIR") pass through a small resident queue ``Q``.

Data structures: stack ``S`` holds LIR blocks plus recently-seen HIR
blocks (resident or ghost); queue ``Q`` holds the resident HIR blocks,
which are the eviction candidates.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum, auto

from repro.cache.block import BlockKey
from repro.cache.policies.base import ReplacementPolicy
from repro.errors import ConfigurationError, PolicyError


class _Kind(Enum):
    LIR = auto()
    HIR_RESIDENT = auto()
    HIR_GHOST = auto()


class LIRSPolicy(ReplacementPolicy):
    """LIRS replacement.

    Args:
        capacity: Cache size in blocks.
        hir_fraction: Fraction of the cache reserved for resident HIR
            blocks (the original paper suggests ~1%).
        ghost_factor: Bound on non-resident (ghost) stack entries, as a
            multiple of capacity.
    """

    name = "LIRS"

    def __init__(
        self,
        capacity: int,
        hir_fraction: float = 0.01,
        ghost_factor: int = 2,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"LIRS capacity must be >= 1, got {capacity}"
            )
        self.l_hirs = max(1, int(capacity * hir_fraction))
        self.l_lirs = max(1, capacity - self.l_hirs)
        self.ghost_capacity = max(capacity * ghost_factor, 16)
        self._kind: dict[BlockKey, _Kind] = {}
        self._stack: OrderedDict[BlockKey, None] = OrderedDict()  # S
        self._queue: OrderedDict[BlockKey, None] = OrderedDict()  # Q
        self._lir_count = 0
        self._resident = 0
        self._ghosts = 0

    # -- internals -----------------------------------------------------------

    def _stack_push(self, key: BlockKey) -> None:
        self._stack[key] = None
        self._stack.move_to_end(key)

    def _prune(self) -> None:
        """Pop the stack bottom until it is a LIR block."""
        while self._stack:
            bottom = next(iter(self._stack))
            kind = self._kind.get(bottom)
            if kind is _Kind.LIR:
                return
            del self._stack[bottom]
            if kind is _Kind.HIR_GHOST:
                del self._kind[bottom]
                self._ghosts -= 1
            # HIR_RESIDENT blocks stay tracked via Q.

    def _demote_bottom_lir(self) -> None:
        """Turn the stack's bottom LIR block into a resident HIR block."""
        bottom = next(iter(self._stack))
        del self._stack[bottom]
        self._kind[bottom] = _Kind.HIR_RESIDENT
        self._queue[bottom] = None
        self._lir_count -= 1
        self._prune()

    def _limit_ghosts(self) -> None:
        if self._ghosts <= self.ghost_capacity:
            return
        for key in list(self._stack):
            if self._kind.get(key) is _Kind.HIR_GHOST:
                del self._stack[key]
                del self._kind[key]
                self._ghosts -= 1
                if self._ghosts <= self.ghost_capacity:
                    break
        self._prune()

    # -- policy contract ---------------------------------------------------------

    def on_access(self, key: BlockKey, time: float, hit: bool) -> None:
        if not hit:
            return  # classification happens in on_insert
        kind = self._kind.get(key)
        if kind is _Kind.LIR:
            was_bottom = next(iter(self._stack)) == key
            self._stack_push(key)
            if was_bottom:
                self._prune()
        elif kind is _Kind.HIR_RESIDENT:
            if key in self._stack:
                # low IRR proven: promote to LIR
                self._kind[key] = _Kind.LIR
                self._lir_count += 1
                self._stack_push(key)
                self._queue.pop(key, None)
                if self._lir_count > self.l_lirs:
                    self._demote_bottom_lir()
            else:
                # long IRR: stays HIR, gets a fresh stack entry
                self._stack_push(key)
                self._queue.move_to_end(key)
        else:
            raise PolicyError(f"LIRS: hit on untracked block {key}")

    def on_insert(self, key: BlockKey, time: float) -> None:
        kind = self._kind.get(key)
        if kind in (_Kind.LIR, _Kind.HIR_RESIDENT):
            # pinned-victim re-insert; already tracked as resident
            return
        self._resident += 1
        if kind is _Kind.HIR_GHOST:
            # reuse within stack depth: becomes LIR
            self._ghosts -= 1
            self._kind[key] = _Kind.LIR
            self._lir_count += 1
            self._stack_push(key)
            if self._lir_count > self.l_lirs:
                self._demote_bottom_lir()
            return
        if self._lir_count < self.l_lirs:
            # cold cache: fill the LIR partition directly
            self._kind[key] = _Kind.LIR
            self._lir_count += 1
            self._stack_push(key)
            return
        self._kind[key] = _Kind.HIR_RESIDENT
        self._stack_push(key)
        self._queue[key] = None
        self._limit_ghosts()

    def evict(self, time: float) -> BlockKey:
        if self._queue:
            key, _ = self._queue.popitem(last=False)
            if key in self._stack:
                self._kind[key] = _Kind.HIR_GHOST
                self._ghosts += 1
            else:
                del self._kind[key]
            self._resident -= 1
            return key
        # Degenerate case: everything is LIR — evict the stack bottom.
        for key in self._stack:
            if self._kind.get(key) is _Kind.LIR:
                del self._stack[key]
                del self._kind[key]
                self._lir_count -= 1
                self._resident -= 1
                self._prune()
                return key
        raise PolicyError("LIRS: evict with no resident blocks")

    def on_remove(self, key: BlockKey) -> None:
        kind = self._kind.get(key)
        if kind is _Kind.LIR:
            self._stack.pop(key, None)
            del self._kind[key]
            self._lir_count -= 1
            self._resident -= 1
            self._prune()
        elif kind is _Kind.HIR_RESIDENT:
            self._queue.pop(key, None)
            if key in self._stack:
                self._kind[key] = _Kind.HIR_GHOST
                self._ghosts += 1
            else:
                del self._kind[key]
            self._resident -= 1

    def __len__(self) -> int:
        return self._resident
