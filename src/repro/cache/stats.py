"""Cache hit/miss statistics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class CacheStats:
    """Counters maintained by :class:`~repro.cache.cache.StorageCache`.

    ``cold_misses`` counts first-ever accesses to a block (tracked
    exactly with a set — the online PA policy uses a Bloom filter
    instead, as the paper does, but the *report* should be exact).
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    cold_misses: int = 0
    read_accesses: int = 0
    write_accesses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    prefetch_admissions: int = 0
    prefetch_hits: int = 0
    _seen: set = field(default_factory=set, repr=False)

    def record_access(self, key, hit: bool, is_write: bool) -> None:
        self.accesses += 1
        if is_write:
            self.write_accesses += 1
        else:
            self.read_accesses += 1
        if hit:
            self.hits += 1
            return
        self.misses += 1
        if key not in self._seen:
            self.cold_misses += 1
            self._seen.add(key)

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def cold_miss_fraction(self) -> float:
        """Cold misses as a fraction of all accesses (Section 5.2 stat)."""
        return self.cold_misses / self.accesses if self.accesses else 0.0
