"""Cache block bookkeeping.

A cached block is identified by its :data:`BlockKey` — the ``(disk_id,
block_number)`` pair — and carries the small amount of state the write
policies need: the dirty bit and, for WTDU, the "logged" flag marking
blocks whose latest contents live in the log region rather than on
their home disk. Logged blocks are pinned: evicting them would discard
the only fast copy while the slow copy sits in a log that is never read
outside crash recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Global block identity: (disk_id, block_number_on_that_disk).
BlockKey = tuple[int, int]


@dataclass(slots=True)
class BlockState:
    """Mutable per-block metadata held by the cache."""

    dirty: bool = False
    logged: bool = False
    #: Set for blocks admitted by the prefetcher and not yet demanded;
    #: cleared (and counted as a prefetch hit) on first demand access.
    prefetched: bool = False
    #: Scratch slots for the fused OPG loop (``sim/engine.py``): the
    #: block's next-access time and lazy-heap stamp, which the scalar
    #: path keeps in ``OPGPolicy._next_of`` / ``_stamp`` dicts. Riding
    #: on the state object the hit path already holds makes the fused
    #: loop's per-access bookkeeping dict-free; the policy dicts are
    #: rebuilt when the loop hands control back. Meaningless outside
    #: that loop.
    opg_nt: float = 0.0
    opg_stamp: int = 0

    @property
    def pinned(self) -> bool:
        """Logged blocks may not be evicted until flushed to their disk."""
        return self.logged


def disk_of(key: BlockKey) -> int:
    """The disk a block key belongs to."""
    return key[0]


def block_of(key: BlockKey) -> int:
    """The on-disk block number of a block key."""
    return key[1]
