"""The storage cache.

:class:`StorageCache` holds block metadata, drives the replacement
policy through its contract, and enforces capacity. It knows nothing
about disks or write semantics — the engine and the write policy react
to the eviction list it returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.block import BlockKey, BlockState, disk_of
from repro.cache.policies.base import ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError, SimulationError
from repro.observe.events import CacheHit, CacheMiss, Evict, Insert


@dataclass(slots=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: Blocks pushed out to make room, with their final state (the
    #: write policy must persist the dirty ones). Callers only read it.
    evicted: list[tuple[BlockKey, BlockState]] = field(default_factory=list)


#: Shared hit result — a hit never carries evictions, so the access
#: path returns this singleton instead of allocating per hit.
_HIT = AccessResult(hit=True)
_EMPTY_MISS_EVICTIONS: list[tuple[BlockKey, BlockState]] = []


class StorageCache:
    """Block cache with pluggable replacement policy.

    Args:
        capacity_blocks: Maximum resident blocks; ``None`` simulates the
            paper's infinite cache (only cold misses reach the disks).
        policy: Replacement policy instance. Ignored for eviction when
            capacity is infinite, but still notified of accesses so
            policy-side statistics remain meaningful.
        probe: Optional event hook (see :mod:`repro.observe`); receives
            :class:`CacheHit` / :class:`CacheMiss` / :class:`Insert` /
            :class:`Evict` events.
    """

    def __init__(
        self,
        capacity_blocks: int | None,
        policy: ReplacementPolicy,
        probe=None,
    ) -> None:
        if capacity_blocks is not None and capacity_blocks < 1:
            raise ConfigurationError(
                f"capacity_blocks must be >= 1 or None, got {capacity_blocks}"
            )
        self.capacity = capacity_blocks
        self.policy = policy
        self.probe = probe
        self.stats = CacheStats()
        self._blocks: dict[BlockKey, BlockState] = {}
        self._dirty_by_disk: dict[int, set[BlockKey]] = {}
        self._pinned = 0

    # -- queries ----------------------------------------------------------

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def state(self, key: BlockKey) -> BlockState:
        """Metadata of a resident block (KeyError if absent)."""
        return self._blocks[key]

    def dirty_blocks(self, disk_id: int) -> list[BlockKey]:
        """Dirty (or logged) blocks belonging to ``disk_id``, sorted by
        block number — the order an eager flush writes them."""
        return sorted(self._dirty_by_disk.get(disk_id, ()))

    def dirty_count(self, disk_id: int) -> int:
        return len(self._dirty_by_disk.get(disk_id, ()))

    @property
    def pinned_count(self) -> int:
        return self._pinned

    # -- the access path -----------------------------------------------------

    def access(self, key: BlockKey, time: float, is_write: bool) -> AccessResult:
        """Look up ``key``; on a miss, insert it and evict as needed.

        The caller is responsible for any disk I/O implied by the miss
        and by the returned evictions.
        """
        state = self._blocks.get(key)
        hit = state is not None
        stats = self.stats
        # record_access inlined — this is the hottest call in a run.
        stats.accesses += 1
        if is_write:
            stats.write_accesses += 1
        else:
            stats.read_accesses += 1
        if self.probe is not None:
            if hit:
                self.probe(CacheHit(time, key[0], key[1], is_write))
            else:
                self.probe(CacheMiss(time, key[0], key[1], is_write))
        self.policy.on_access(key, time, hit)
        if hit:
            stats.hits += 1
            if state.prefetched:
                state.prefetched = False
                stats.prefetch_hits += 1
            return _HIT
        stats.misses += 1
        seen = stats._seen
        if key not in seen:
            stats.cold_misses += 1
            seen.add(key)
        evicted = self._make_room(time)
        self._blocks[key] = BlockState()
        self.policy.on_insert(key, time)
        if self.probe is not None:
            self.probe(Insert(time, key[0], key[1], len(self._blocks)))
        return AccessResult(hit=False, evicted=evicted)

    def admit(self, key: BlockKey, time: float) -> AccessResult:
        """Insert a block without a demand access (prefetch admission).

        The replacement policy sees only ``on_insert`` — a prefetch is
        not a reference, so it must not refresh recency or feed the PA
        classifier. No-op if the block is already resident.
        """
        if key in self._blocks:
            return _HIT
        evicted = self._make_room(time)
        self._blocks[key] = BlockState(prefetched=True)
        self.policy.on_insert(key, time)
        self.stats.prefetch_admissions += 1
        if self.probe is not None:
            self.probe(
                Insert(time, key[0], key[1], len(self._blocks), prefetched=True)
            )
        return AccessResult(hit=False, evicted=evicted)

    def _make_room(self, time: float) -> list[tuple[BlockKey, BlockState]]:
        blocks = self._blocks
        capacity = self.capacity
        if capacity is None or len(blocks) < capacity:
            return _EMPTY_MISS_EVICTIONS
        policy = self.policy
        stats = self.stats
        evicted: list[tuple[BlockKey, BlockState]] = []
        while len(blocks) >= capacity:
            # Pinned victims are set aside (not re-inserted) until a
            # real victim is found: the policy forgets each candidate
            # as it offers it, so every round makes progress even for
            # policies whose ranking would re-offer the same pinned
            # block forever (Belady, OPG).
            skipped: list[BlockKey] | None = None
            victim = None
            state = None
            while len(policy):
                candidate = policy.evict(time)
                state = blocks.get(candidate)
                if state is None:
                    raise SimulationError(
                        f"policy evicted non-resident block {candidate}"
                    )
                if state.pinned:
                    if skipped is None:
                        skipped = [candidate]
                    else:
                        skipped.append(candidate)
                    continue
                victim = candidate
                break
            if skipped is not None:
                for key in skipped:
                    policy.on_insert(key, time)
            if victim is None:
                raise SimulationError(
                    "cache cannot evict: all resident blocks are pinned "
                    f"({self._pinned} logged blocks); the write policy "
                    "must flush before the cache fills with pinned blocks"
                )
            # _forget inlined, reusing the state fetched above.
            del blocks[victim]
            dirty_or_logged = state.dirty or state.logged
            if dirty_or_logged:
                if state.logged:
                    self._pinned -= 1
                bucket = self._dirty_by_disk.get(victim[0])
                if bucket is not None:
                    bucket.discard(victim)
            stats.evictions += 1
            if state.dirty:
                stats.dirty_evictions += 1
            if self.probe is not None:
                self.probe(
                    Evict(
                        time,
                        victim[0],
                        victim[1],
                        dirty_or_logged,
                        len(blocks),
                    )
                )
            evicted.append((victim, state))
        return evicted

    # -- metadata transitions -------------------------------------------------

    def mark_dirty(self, key: BlockKey) -> None:
        state = self._blocks[key]
        if not (state.dirty or state.logged):
            self._dirty_by_disk.setdefault(disk_of(key), set()).add(key)
        state.dirty = True

    def mark_logged(self, key: BlockKey) -> None:
        """WTDU: the block's latest data went to the log region."""
        state = self._blocks[key]
        if not (state.dirty or state.logged):
            self._dirty_by_disk.setdefault(disk_of(key), set()).add(key)
        if not state.logged:
            self._pinned += 1
        state.logged = True

    def mark_clean(self, key: BlockKey) -> None:
        """The block's data reached its home disk."""
        state = self._blocks[key]
        if state.logged:
            self._pinned -= 1
        if state.dirty or state.logged:
            bucket = self._dirty_by_disk.get(disk_of(key))
            if bucket is not None:
                bucket.discard(key)
        state.dirty = False
        state.logged = False

    def invalidate(self, key: BlockKey) -> BlockState | None:
        """Drop a block outright (returns its state, or None)."""
        state = self._blocks.get(key)
        if state is None:
            return None
        self._forget(key)
        self.policy.on_remove(key)
        return state

    def _forget(self, key: BlockKey) -> None:
        state = self._blocks.pop(key)
        if state.logged:
            self._pinned -= 1
        if state.dirty or state.logged:
            bucket = self._dirty_by_disk.get(disk_of(key))
            if bucket is not None:
                bucket.discard(key)
