"""Request service-time computation: seek + rotational latency + transfer.

Rotational position is tracked continuously: while the spindle is at
full speed the angular position advances with wall-clock time, so the
rotational latency of a request depends on *when* it is serviced — the
same deterministic behaviour a full disk simulator exhibits, without
any random sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.units import rpm_to_period


@dataclass(frozen=True, slots=True)
class ServiceBreakdown:
    """Components of one request's on-disk service."""

    seek_s: float
    rotation_s: float
    transfer_s: float

    @property
    def total_s(self) -> float:
        return self.seek_s + self.rotation_s + self.transfer_s


class ServiceTimeModel:
    """Computes service times against a geometry + seek model.

    Args:
        geometry: Block layout of the disk.
        seek_model: Arm movement timing.
        rpm: Full spindle speed (requests are only served at full speed
            in this paper's power model).
    """

    def __init__(
        self, geometry: DiskGeometry, seek_model: SeekModel, rpm: float
    ) -> None:
        self.geometry = geometry
        self.seek = seek_model
        self.rotation_period_s = rpm_to_period(rpm)
        self._sector_angle = 1.0 / geometry.sectors_per_track

    def angular_position(self, time: float) -> float:
        """Fraction of a revolution (in [0, 1)) at wall-clock ``time``.

        The spindle phase is defined relative to t=0; the simulator only
        queries this while the disk is at full speed, which is the only
        time the head can read, so phase drift during speed changes does
        not affect results.
        """
        return (time / self.rotation_period_s) % 1.0

    def service(
        self, start_time: float, current_cylinder: int, block: int, nblocks: int
    ) -> tuple[ServiceBreakdown, int]:
        """Compute the service breakdown for a request.

        Args:
            start_time: When the head starts moving (disk already at
                full speed).
            current_cylinder: Arm position before the request.
            block: First logical block of the request.
            nblocks: Number of consecutive blocks transferred.

        Returns:
            ``(breakdown, end_cylinder)`` — the timing components and
            the arm's cylinder after the transfer.
        """
        if nblocks < 1:
            raise ValueError(f"nblocks must be >= 1, got {nblocks}")
        geometry = self.geometry
        cylinder, sector = geometry.locate_cs(block)
        # Clamp multi-block requests at the end of the disk.
        last_block = min(block + nblocks, geometry.num_blocks) - 1
        if last_block == block:
            end_cylinder = cylinder
        else:
            end_cylinder = geometry.locate_cs(last_block)[0]

        period = self.rotation_period_s
        seek_s = self.seek.seek_time(abs(cylinder - current_cylinder))
        # Rotational latency: wait for the target sector to pass under
        # the head once the seek completes. The sector angle depends on
        # the track's capacity (zoned geometries vary it per cylinder).
        sector_angle = 1.0 / geometry.track_sectors(cylinder)
        at_head = ((start_time + seek_s) / period) % 1.0
        target = sector * sector_angle
        delta = target - at_head
        if delta < 0:
            delta += 1.0
        rotation_s = delta * period

        # Transfer: consecutive sectors; track/head switches are folded
        # into the per-sector rate (a simplification that slightly
        # favours long transfers, uniformly across all policies).
        sectors = (last_block - block + 1) * geometry.sectors_per_block
        transfer_s = sectors * sector_angle * period
        return (
            ServiceBreakdown(
                seek_s=seek_s, rotation_s=rotation_s, transfer_s=transfer_s
            ),
            end_cylinder,
        )
