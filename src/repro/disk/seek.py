"""Seek-time model.

The standard three-point curve used by disk simulators: datasheets give
the single-cylinder, average, and full-stroke seek times; the model
interpolates with the classic square-root law for short seeks (arm
acceleration-limited) and a linear law for long seeks (coast-limited).

    t(d) = a + b * sqrt(d)            for d <= d_knee
    t(d) = c + e * d                  for d >  d_knee

Coefficients are fitted so the curve passes through the three datasheet
points, is continuous at the knee, and is monotonically non-decreasing.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.power.specs import DiskSpec

#: Fraction of the total stroke treated as "short" (acceleration-bound).
_KNEE_FRACTION = 1 / 3

#: The average random seek covers about a third of the stroke.
_AVERAGE_SEEK_FRACTION = 1 / 3


class SeekModel:
    """Seek time as a function of cylinder distance.

    Args:
        cylinders: Total cylinder count of the disk.
        single_cylinder_s: Track-to-track seek time.
        average_s: Datasheet average seek (taken at 1/3 stroke).
        full_stroke_s: Datasheet full-stroke seek time.
    """

    def __init__(
        self,
        cylinders: int,
        single_cylinder_s: float,
        average_s: float,
        full_stroke_s: float,
    ) -> None:
        if cylinders < 2:
            raise ConfigurationError("seek model needs at least 2 cylinders")
        if not 0 < single_cylinder_s <= average_s <= full_stroke_s:
            raise ConfigurationError(
                "need 0 < single_cylinder <= average <= full_stroke seek"
            )
        self.cylinders = cylinders
        max_dist = cylinders - 1
        self._knee = max(1, int(max_dist * _KNEE_FRACTION))
        avg_dist = max(1, int(max_dist * _AVERAGE_SEEK_FRACTION))
        # Short-seek curve through (1, single) and (avg_dist, average).
        self._a = single_cylinder_s
        denom = math.sqrt(avg_dist) - 1.0
        self._b = (average_s - single_cylinder_s) / denom if denom > 0 else 0.0
        # Long-seek line through (knee, t_short(knee)) and (max, full).
        t_knee = self._short(self._knee)
        span = max_dist - self._knee
        self._slope = (full_stroke_s - t_knee) / span if span > 0 else 0.0
        if self._slope < 0:
            # Datasheet triple incompatible with a monotone knee: flatten.
            self._slope = 0.0
        self._t_knee = t_knee

    def _short(self, distance: int) -> float:
        return self._a + self._b * (math.sqrt(distance) - 1.0)

    def seek_time(self, distance: int) -> float:
        """Seconds to move the arm ``distance`` cylinders (0 => 0)."""
        if distance < 0:
            raise ValueError(f"seek distance must be >= 0, got {distance}")
        if distance == 0:
            return 0.0
        if distance <= self._knee:
            return self._short(distance)
        return self._t_knee + self._slope * (distance - self._knee)

    @classmethod
    def from_spec(cls, spec: DiskSpec, cylinders: int) -> "SeekModel":
        """Build the model from a :class:`DiskSpec`'s datasheet points."""
        return cls(
            cylinders=cylinders,
            single_cylinder_s=spec.track_to_track_seek_s,
            average_s=spec.average_seek_s,
            full_stroke_s=spec.full_stroke_seek_s,
        )
