"""The multi-disk storage backend.

:class:`DiskArray` owns one :class:`~repro.disk.disk.SimulatedDisk` per
spindle and provides array-level submission, finalization, and rolled-up
energy accounting. Blocks are addressed as ``(disk_id, block)`` — the
paper's traces are already per-disk, so no striping layer is imposed.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.disk.disk import DiskResponse, SimulatedDisk
from repro.errors import ConfigurationError
from repro.power.accounting import EnergyAccount
from repro.power.dpm import DiskPowerManager
from repro.power.modes import PowerModel
from repro.power.specs import DiskSpec, build_power_model
from repro.units import DEFAULT_BLOCK_SIZE

#: Signature of the factory that builds one DPM instance per disk.
DPMFactory = Callable[[PowerModel], DiskPowerManager]


class DiskArray:
    """A homogeneous array of simulated disks.

    Args:
        num_disks: Number of spindles.
        spec: Shared datasheet spec.
        dpm_factory: Called once per disk with the (shared) power model;
            must return a fresh DPM instance, since DPM may be stateful.
        power_model: Optional pre-built model (defaults to the spec's
            multi-speed model).
        block_size: Logical block size in bytes.
        start_time: Simulation epoch for every disk.
        fault_injector: Optional shared
            :class:`~repro.faults.injector.FaultInjector`; one injector
            serves the whole array so the fault sequence is a function
            of the plan's seed and the request order alone.
    """

    def __init__(
        self,
        num_disks: int,
        spec: DiskSpec,
        dpm_factory: DPMFactory,
        power_model: PowerModel | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        start_time: float = 0.0,
        disk_cls: type[SimulatedDisk] = SimulatedDisk,
        probe=None,
        fault_injector=None,
    ) -> None:
        if num_disks < 1:
            raise ConfigurationError(f"num_disks must be >= 1, got {num_disks}")
        self.spec = spec
        self.power_model = power_model or build_power_model(spec)
        self.block_size = block_size
        self.fault_injector = fault_injector
        self._disks = [
            disk_cls(
                disk_id=i,
                spec=spec,
                power_model=self.power_model,
                dpm=dpm_factory(self.power_model),
                block_size=block_size,
                start_time=start_time,
                probe=probe,
                faults=fault_injector,
            )
            for i in range(num_disks)
        ]

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._disks)

    def __iter__(self) -> Iterator[SimulatedDisk]:
        return iter(self._disks)

    def __getitem__(self, disk_id: int) -> SimulatedDisk:
        return self._disks[disk_id]

    @property
    def disks(self) -> Sequence[SimulatedDisk]:
        return self._disks

    # -- operation -------------------------------------------------------------

    def submit(
        self,
        disk_id: int,
        arrival: float,
        block: int,
        nblocks: int = 1,
        is_write: bool = False,
    ) -> DiskResponse:
        """Submit one request to a member disk."""
        return self._disks[disk_id].submit(arrival, block, nblocks, is_write)

    def submit_quick(
        self, disk_id: int, arrival: float, block: int, is_write: bool = False
    ) -> tuple[float, float]:
        """Single-block fast path: ``(response_time_s, wake_delay_s)``."""
        return self._disks[disk_id].submit_quick(arrival, block, is_write)

    def finalize(self, end_time: float) -> None:
        """Close out trailing idle gaps on every disk."""
        for disk in self._disks:
            disk.finalize(end_time)

    # -- reporting ----------------------------------------------------------------

    def total_account(self) -> EnergyAccount:
        """Array-wide energy ledger (sum over disks)."""
        total = EnergyAccount()
        for disk in self._disks:
            total.merge(disk.account)
        return total

    @property
    def total_energy_j(self) -> float:
        return sum(d.account.total_energy_j for d in self._disks)

    def mean_interarrivals(self) -> dict[int, float]:
        """Per-disk mean request inter-arrival time (Figure 7b)."""
        return {d.disk_id: d.mean_interarrival_s for d in self._disks}
