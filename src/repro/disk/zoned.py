"""Zoned (multi-band) disk geometry.

Real disks record more sectors on their longer outer tracks (zoned bit
recording); DiskSim models this with per-zone geometry. The default
:class:`~repro.disk.geometry.DiskGeometry` is uniform; this module adds
:class:`ZonedDiskGeometry`, which divides the cylinders into zones of
decreasing track capacity from the outer edge inward. The service-time
model picks the zone's track capacity up through
:meth:`DiskGeometry.track_sectors`, so outer-zone transfers run
proportionally faster — the effect zoning exists to model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.geometry import DiskAddress, DiskGeometry
from repro.errors import ConfigurationError
from repro.units import SECTOR_SIZE


@dataclass(frozen=True)
class Zone:
    """One recording zone: a run of cylinders with equal track capacity."""

    cylinders: int
    sectors_per_track: int


class ZonedDiskGeometry(DiskGeometry):
    """Geometry with outer-to-inner zones of decreasing track capacity.

    Args:
        capacity_bytes: Target usable capacity; zones are sized
            proportionally and the innermost zone absorbs rounding.
        block_size: Logical block size (multiple of the sector size).
        heads: Recording surfaces.
        num_zones: Zone count.
        outer_sectors_per_track / inner_sectors_per_track: Track
            capacities at the edges; intermediate zones interpolate
            linearly. Both must be multiples of the block's sectors.
    """

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int,
        heads: int,
        num_zones: int = 8,
        outer_sectors_per_track: int = 640,
        inner_sectors_per_track: int = 384,
    ) -> None:
        if num_zones < 1:
            raise ConfigurationError("num_zones must be >= 1")
        if inner_sectors_per_track > outer_sectors_per_track:
            raise ConfigurationError(
                "outer tracks must hold at least as many sectors as inner"
            )
        # Validate block size via the base class using the outer zone,
        # then rebuild the zone table.
        super().__init__(
            capacity_bytes, block_size, heads, outer_sectors_per_track
        )
        spb = self.sectors_per_block
        zones: list[Zone] = []
        span = outer_sectors_per_track - inner_sectors_per_track
        for z in range(num_zones):
            raw = outer_sectors_per_track - (
                span * z // max(1, num_zones - 1) if num_zones > 1 else 0
            )
            sectors = max(spb, (raw // spb) * spb)  # block-align each zone
            zones.append(Zone(cylinders=0, sectors_per_track=sectors))

        # Size zones so each holds ~1/num_zones of the capacity.
        total_blocks_target = capacity_bytes // block_size
        per_zone_target = max(1, total_blocks_target // num_zones)
        self.zones = []
        self._zone_first_cylinder = []
        self._zone_first_block = []
        cylinder = block = 0
        for zone in zones:
            blocks_per_cyl = (zone.sectors_per_track // spb) * heads
            cylinders = max(1, per_zone_target // blocks_per_cyl)
            self.zones.append(
                Zone(cylinders=cylinders, sectors_per_track=zone.sectors_per_track)
            )
            self._zone_first_cylinder.append(cylinder)
            self._zone_first_block.append(block)
            cylinder += cylinders
            block += cylinders * blocks_per_cyl
        self.cylinders = cylinder
        self.num_blocks = block
        # base-class uniform fields describe the outer zone only; the
        # overridden methods below handle the rest
        self.sectors_per_track = outer_sectors_per_track

    # -- zone lookups ---------------------------------------------------

    def zone_of_block(self, block: int) -> int:
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range [0, {self.num_blocks})")
        zone = 0
        for z, first in enumerate(self._zone_first_block):
            if block >= first:
                zone = z
        return zone

    def zone_of_cylinder(self, cylinder: int) -> int:
        if not 0 <= cylinder < self.cylinders:
            raise ValueError(
                f"cylinder {cylinder} out of range [0, {self.cylinders})"
            )
        zone = 0
        for z, first in enumerate(self._zone_first_cylinder):
            if cylinder >= first:
                zone = z
        return zone

    def track_sectors(self, cylinder: int) -> int:
        """Sectors per track at ``cylinder`` (zone-dependent)."""
        return self.zones[self.zone_of_cylinder(cylinder)].sectors_per_track

    # -- mapping -----------------------------------------------------------

    def locate(self, block: int) -> DiskAddress:
        z = self.zone_of_block(block)
        zone = self.zones[z]
        spb = self.sectors_per_block
        blocks_per_track = zone.sectors_per_track // spb
        blocks_per_cyl = blocks_per_track * self.heads
        offset = block - self._zone_first_block[z]
        cyl_in_zone, rem = divmod(offset, blocks_per_cyl)
        head, track_block = divmod(rem, blocks_per_track)
        return DiskAddress(
            cylinder=self._zone_first_cylinder[z] + cyl_in_zone,
            head=head,
            sector=track_block * spb,
        )

    def locate_cs(self, block: int) -> tuple[int, int]:
        z = self.zone_of_block(block)
        zone = self.zones[z]
        spb = self.sectors_per_block
        blocks_per_track = zone.sectors_per_track // spb
        blocks_per_cyl = blocks_per_track * self.heads
        offset = block - self._zone_first_block[z]
        cyl_in_zone, rem = divmod(offset, blocks_per_cyl)
        track_block = rem % blocks_per_track
        return self._zone_first_cylinder[z] + cyl_in_zone, track_block * spb

    def block_of(self, address: DiskAddress) -> int:
        if address.sector % self.sectors_per_block:
            raise ValueError(f"sector {address.sector} is not block-aligned")
        z = self.zone_of_cylinder(address.cylinder)
        zone = self.zones[z]
        spb = self.sectors_per_block
        blocks_per_track = zone.sectors_per_track // spb
        blocks_per_cyl = blocks_per_track * self.heads
        cyl_in_zone = address.cylinder - self._zone_first_cylinder[z]
        return (
            self._zone_first_block[z]
            + cyl_in_zone * blocks_per_cyl
            + address.head * blocks_per_track
            + address.sector // spb
        )
