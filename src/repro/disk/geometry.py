"""Disk geometry: mapping logical blocks to cylinders/heads/sectors.

A deliberately classical (non-zoned) geometry: every track holds the
same number of sectors, blocks are striped across heads within a
cylinder before moving to the next cylinder. This is sufficient for the
paper's purposes — what matters downstream is that seek distance grows
with logical distance and that transfer time reflects track capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import SECTOR_SIZE


@dataclass(frozen=True, slots=True)
class DiskAddress:
    """Physical location of a block: cylinder, head (surface), sector."""

    cylinder: int
    head: int
    sector: int


class DiskGeometry:
    """Uniform (non-zoned) disk geometry.

    Args:
        capacity_bytes: Usable capacity; rounded down to whole blocks.
        block_size: Logical block size in bytes (multiple of the sector
            size).
        heads: Number of recording surfaces.
        sectors_per_track: Sectors on every track.
    """

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int,
        heads: int,
        sectors_per_track: int,
    ) -> None:
        if block_size <= 0 or block_size % SECTOR_SIZE:
            raise ConfigurationError(
                f"block_size must be a positive multiple of {SECTOR_SIZE}, "
                f"got {block_size}"
            )
        if heads <= 0 or sectors_per_track <= 0:
            raise ConfigurationError("heads and sectors_per_track must be > 0")
        self.block_size = block_size
        self.heads = heads
        self.sectors_per_track = sectors_per_track
        self.sectors_per_block = block_size // SECTOR_SIZE
        if self.sectors_per_track % self.sectors_per_block:
            raise ConfigurationError(
                "sectors_per_track must be a multiple of the block's sectors "
                f"({self.sectors_per_block})"
            )
        self.blocks_per_track = sectors_per_track // self.sectors_per_block
        self.blocks_per_cylinder = self.blocks_per_track * heads
        total_blocks = capacity_bytes // block_size
        self.cylinders = max(1, total_blocks // self.blocks_per_cylinder)
        #: Number of addressable whole blocks (whole cylinders only).
        self.num_blocks = self.cylinders * self.blocks_per_cylinder

    def track_sectors(self, cylinder: int) -> int:
        """Sectors per track at ``cylinder``.

        Constant for the uniform geometry; zoned geometries override
        this so the timing model sees per-zone track capacities.
        """
        return self.sectors_per_track

    def locate(self, block: int) -> DiskAddress:
        """Map logical block number to its physical address.

        Raises:
            ValueError: If ``block`` is outside the disk.
        """
        if not 0 <= block < self.num_blocks:
            raise ValueError(
                f"block {block} out of range [0, {self.num_blocks})"
            )
        cylinder, rem = divmod(block, self.blocks_per_cylinder)
        head, track_block = divmod(rem, self.blocks_per_track)
        return DiskAddress(
            cylinder=cylinder,
            head=head,
            sector=track_block * self.sectors_per_block,
        )

    def locate_cs(self, block: int) -> tuple[int, int]:
        """``(cylinder, sector)`` of a block — :meth:`locate` without
        the :class:`DiskAddress` allocation, for the service-time hot
        path."""
        if not 0 <= block < self.num_blocks:
            raise ValueError(
                f"block {block} out of range [0, {self.num_blocks})"
            )
        cylinder, rem = divmod(block, self.blocks_per_cylinder)
        track_block = rem % self.blocks_per_track
        return cylinder, track_block * self.sectors_per_block

    def block_of(self, address: DiskAddress) -> int:
        """Inverse of :meth:`locate` (sector must be block-aligned)."""
        if address.sector % self.sectors_per_block:
            raise ValueError(f"sector {address.sector} is not block-aligned")
        return (
            address.cylinder * self.blocks_per_cylinder
            + address.head * self.blocks_per_track
            + address.sector // self.sectors_per_block
        )
