"""Serve-at-all-speeds multi-speed disk (the DRPM / Carrera design).

Section 2.1 of the paper: "A multi-speed disk can be designed to either
serve requests at all rotational speeds or serve requests only after a
transition to the highest speed. Carrera and Bianchini use the first
option. We choose the second." The main library implements the paper's
choice (:class:`~repro.disk.disk.SimulatedDisk`); this module
implements the *first* option so the two designs can be compared — the
comparison benchmark shows the trade: all-speed service eliminates the
multi-second wake delays at the cost of degraded transfer rates while
rotating slowly.

Model (documented approximations):

* A request arriving while the disk rotates at a NAP speed is serviced
  *at that speed*: rotational latency and transfer time scale by
  ``rpm_max / rpm``; seeking is speed-independent. Service power is the
  mode's idle power plus the full-speed active increment.
* Only standby (spindle stopped) requires a spin-up before service.
* After service the disk stays at its current speed and continues the
  threshold descent from there (``PracticalDPM.process_idle_from``).
* Under load, DRPM ramps speed back up: if consecutive requests arrive
  within ``ramp_up_gap_s`` of each other, the disk transitions to full
  speed, paying the mode's spin-up energy; the ramp overlaps subsequent
  rotation (it is not added to response time) — a deliberately
  optimistic reading of DRPM's gradual speed modulation.
"""

from __future__ import annotations

from repro.disk.disk import DiskResponse, SimulatedDisk
from repro.disk.timing import ServiceBreakdown
from repro.errors import ConfigurationError, SimulationError
from repro.observe.events import (
    DiskFinalized,
    DiskService,
    DiskSpinUp,
    SpeedChange,
)
from repro.power.dpm import PracticalDPM
from repro.power.modes import PowerModel
from repro.power.specs import DiskSpec
from repro.units import DEFAULT_BLOCK_SIZE, TIME_EPS


class AllSpeedServiceDisk(SimulatedDisk):
    """Multi-speed disk that services requests at reduced speeds.

    Args:
        ramp_up_gap_s: Arrival gap under which the disk ramps back to
            full speed after servicing (defaults to the NAP1 break-even
            time when None — bursts justify full speed, sparse traffic
            does not).
    """

    def __init__(
        self,
        disk_id: int,
        spec: DiskSpec,
        power_model: PowerModel,
        dpm: PracticalDPM,
        block_size: int = DEFAULT_BLOCK_SIZE,
        start_time: float = 0.0,
        ramp_up_gap_s: float | None = None,
        probe=None,
        faults=None,
    ) -> None:
        if not isinstance(dpm, PracticalDPM):
            raise ConfigurationError(
                "AllSpeedServiceDisk requires threshold (Practical) DPM — "
                "its state is the position on the descent ladder"
            )
        super().__init__(
            disk_id, spec, power_model, dpm,
            block_size=block_size, start_time=start_time, probe=probe,
            faults=faults,
        )
        if ramp_up_gap_s is None:
            from repro.power.envelope import EnergyEnvelope

            ramp_up_gap_s = EnergyEnvelope(power_model).breakeven_time(1)
        self.ramp_up_gap_s = ramp_up_gap_s
        self._mode = 0  # current rotational mode after the last service
        self.slow_services = 0
        self.ramp_ups = 0

    def submit_quick(
        self, arrival: float, block: int, is_write: bool = False
    ) -> tuple[float, float]:
        # The base-class fast path inlines full-speed service math; an
        # all-speed disk may serve below full speed, so always take the
        # complete submit() route here.
        response = self.submit(arrival, block, 1, is_write)
        return response.finish - response.arrival, response.wake_delay_s

    def submit(
        self, arrival: float, block: int, nblocks: int = 1, is_write: bool = False
    ) -> DiskResponse:
        if self._finalized:
            raise SimulationError(f"disk {self.disk_id} already finalized")
        if self._last_arrival is not None:
            if arrival < self._last_arrival - TIME_EPS:
                raise SimulationError(
                    f"disk {self.disk_id}: arrival {arrival} precedes "
                    f"previous arrival {self._last_arrival}"
                )
            self._interarrival_sum += max(0.0, arrival - self._last_arrival)
        burst = (
            self._last_arrival is not None
            and arrival - self._last_arrival < self.ramp_up_gap_s
        )
        self._last_arrival = arrival
        self._arrivals += 1

        wake_delay = 0.0
        if arrival > self._busy_until + TIME_EPS:
            gap = arrival - self._busy_until
            mode_before_gap = self._mode
            # the gap continues the descent from the current speed; no
            # automatic spin-up is charged — we only spin up if stopped
            outcome = self.dpm.process_idle_from(self._mode, gap, wake=False)
            self._mode = self.dpm.mode_after_idle_from(self._mode, gap)
            standby = len(self.power_model) - 1
            if self._mode == standby:
                # the spindle is stopped: a full spin-up is unavoidable
                up = self.power_model[standby]
                outcome.wake_delay_s = up.spinup_time_s
                outcome.wake_energy_j = up.spinup_energy_j
                outcome.spinups += 1
                self._mode = 0
            self.account.add_idle(outcome)
            if self.probe is not None:
                self._publish_idle(arrival, outcome)
                if self._mode != mode_before_gap:
                    self.probe(
                        SpeedChange(
                            arrival, self.disk_id, mode_before_gap, self._mode
                        )
                    )
            wake_delay = outcome.wake_delay_s
            effective = arrival
        else:
            effective = self._busy_until

        if self.faults is not None:
            wake_delay += self.faults.delays(
                self.disk_id, arrival, woke=wake_delay > 0.0
            )
        mode = self.power_model[self._mode]
        speed_factor = (
            self.power_model[0].rpm / mode.rpm if mode.rpm > 0 else 1.0
        )
        start_service = effective + wake_delay
        breakdown, end_cyl = self.timing.service(
            start_service, self._cylinder, block, nblocks
        )
        if speed_factor != 1.0:
            self.slow_services += 1
            breakdown = ServiceBreakdown(
                seek_s=breakdown.seek_s,
                rotation_s=breakdown.rotation_s * speed_factor,
                transfer_s=breakdown.transfer_s * speed_factor,
            )
        self._cylinder = end_cyl
        service_power = mode.power_w + (
            self.power_model.active_power_w - self.power_model[0].power_w
        )
        energy = (
            breakdown.seek_s * self.power_model.seek_power_w
            + (breakdown.rotation_s + breakdown.transfer_s) * service_power
        )
        self.account.add_service(breakdown.total_s, energy)
        finish = start_service + breakdown.total_s
        self._busy_until = finish
        if self.probe is not None:
            self.probe(
                DiskService(
                    arrival,
                    self.disk_id,
                    start_service,
                    breakdown.total_s,
                    energy,
                    is_write,
                    nblocks,
                )
            )

        if burst and self._mode != 0:
            # DRPM ramps back to full speed under load; the transition
            # overlaps rotation and costs the mode's spin-up energy
            self.account.add_mode_residency(0, 0.0, 0.0)
            self.account.transition_energy_j += mode.spinup_energy_j
            self.account.spinups += 1
            self.ramp_ups += 1
            if self.probe is not None:
                self.probe(
                    DiskSpinUp(arrival, self.disk_id, 0.0, mode.spinup_energy_j)
                )
                self.probe(SpeedChange(arrival, self.disk_id, self._mode, 0))
            self._mode = 0
        return DiskResponse(
            arrival=arrival,
            start_service=start_service,
            finish=finish,
            wake_delay_s=wake_delay,
            breakdown=breakdown,
        )

    def finalize(self, end_time: float) -> None:
        if self._finalized:
            return
        if end_time > self._busy_until + TIME_EPS:
            outcome = self.dpm.process_idle_from(
                self._mode, end_time - self._busy_until, wake=False
            )
            self.account.add_idle(outcome)
            if self.probe is not None:
                self._publish_idle(end_time, outcome)
            self._busy_until = end_time
        self._finalized = True
        if self.probe is not None:
            self.probe(
                DiskFinalized(end_time, self.disk_id, self.account.total_energy_j)
            )
