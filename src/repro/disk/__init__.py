"""DiskSim-lite: disk geometry, service timing, and the disk simulator.

The paper runs its storage cache in front of DiskSim augmented with a
power model. This subpackage reimplements the parts of that substrate
the evaluation depends on:

* :mod:`repro.disk.geometry` — LBA ↔ cylinder/head/sector mapping.
* :mod:`repro.disk.seek` — the three-point seek-time curve.
* :mod:`repro.disk.timing` — rotational positioning and service-time
  computation.
* :mod:`repro.disk.disk` — :class:`SimulatedDisk`: a FIFO-queued disk
  that services block requests, integrates a DPM scheme over its idle
  gaps, and keeps a full :class:`~repro.power.accounting.EnergyAccount`.
* :mod:`repro.disk.array` — :class:`DiskArray`: the multi-disk storage
  backend addressed as ``(disk_id, block)``.
"""

from repro.disk.array import DiskArray
from repro.disk.disk import DiskResponse, SimulatedDisk
from repro.disk.geometry import DiskGeometry
from repro.disk.multispeed import AllSpeedServiceDisk
from repro.disk.seek import SeekModel
from repro.disk.timing import ServiceTimeModel
from repro.disk.zoned import Zone, ZonedDiskGeometry

__all__ = [
    "AllSpeedServiceDisk",
    "DiskArray",
    "DiskGeometry",
    "DiskResponse",
    "SeekModel",
    "ServiceTimeModel",
    "SimulatedDisk",
    "Zone",
    "ZonedDiskGeometry",
]
