"""The simulated disk: FIFO service, power integration, accounting.

:class:`SimulatedDisk` is trace-driven and lazy: it does nothing until a
request arrives, at which point the idle gap since its last activity is
known and handed to the DPM scheme, which reports the energy spent, the
power-mode residency, and (for online DPM) the spin-up delay the request
must absorb before service can start.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.disk.timing import ServiceBreakdown, ServiceTimeModel
from repro.errors import SimulationError
from repro.observe.events import (
    DiskFinalized,
    DiskService,
    DiskSpinDown,
    DiskSpinUp,
    StateDwell,
)
from repro.power.accounting import EnergyAccount
from repro.power.dpm import DiskPowerManager, IdleOutcome
from repro.power.modes import PowerModel
from repro.power.specs import DiskSpec
from repro.units import DEFAULT_BLOCK_SIZE, TIME_EPS


@dataclass(frozen=True, slots=True)
class DiskResponse:
    """Timing outcome of one disk request."""

    arrival: float
    start_service: float
    finish: float
    wake_delay_s: float
    breakdown: ServiceBreakdown

    @property
    def response_time_s(self) -> float:
        """Queueing + wake + service latency seen by the requester."""
        return self.finish - self.arrival


class SimulatedDisk:
    """One disk: geometry, timing, FIFO queue, DPM, energy ledger.

    Requests must be submitted in non-decreasing arrival order (the
    engine processes the trace chronologically). A request arriving
    while the disk is busy queues FIFO; one arriving after an idle gap
    triggers the DPM reconstruction of that gap.

    Args:
        disk_id: Identifier used in trace records and reports.
        spec: Datasheet description (capacity, timing, power).
        power_model: Multi-speed mode ladder for this disk.
        dpm: Power-management scheme instance (not shared across disks —
            stateless schemes may be shared, but a fresh instance per
            disk is the safe default).
        block_size: Logical block size in bytes.
        start_time: Simulation epoch; the disk is idle at full speed at
            this instant.
        probe: Optional event hook (see :mod:`repro.observe`); receives
            :class:`StateDwell` / :class:`DiskSpinDown` /
            :class:`DiskSpinUp` / :class:`DiskService` /
            :class:`DiskFinalized` events carrying exactly the joules
            recorded in the :class:`EnergyAccount`.
        faults: Optional :class:`~repro.faults.injector.FaultInjector`
            consulted once per request; injected faults are latency-only
            (retry/backoff delays the request, the energy ledger is
            untouched), so a ``faults=None`` run is bit-identical.
    """

    def __init__(
        self,
        disk_id: int,
        spec: DiskSpec,
        power_model: PowerModel,
        dpm: DiskPowerManager,
        block_size: int = DEFAULT_BLOCK_SIZE,
        start_time: float = 0.0,
        probe=None,
        faults=None,
    ) -> None:
        self.disk_id = disk_id
        self.spec = spec
        self.power_model = power_model
        self.dpm = dpm
        self.probe = probe
        self.faults = faults
        self.geometry = DiskGeometry(
            capacity_bytes=spec.capacity_bytes,
            block_size=block_size,
            heads=spec.heads,
            sectors_per_track=spec.sectors_per_track,
        )
        self.timing = ServiceTimeModel(
            geometry=self.geometry,
            seek_model=SeekModel.from_spec(spec, self.geometry.cylinders),
            rpm=spec.rpm_max,
        )
        self.account = EnergyAccount()
        self._busy_until = start_time
        self._cylinder = self.geometry.cylinders // 2
        self._last_arrival: float | None = None
        self._interarrival_sum = 0.0
        self._arrivals = 0
        self._finalized = False

    # -- state queries -----------------------------------------------------

    @property
    def busy_until(self) -> float:
        """Time the disk finishes its current work (idle-gap anchor)."""
        return self._busy_until

    def is_parked(self, at_time: float) -> bool:
        """Whether the disk is below full speed at ``at_time``.

        Used by the write policies ("if the destination disk is in a low
        power mode, write to the log instead"). For online DPM this
        walks the threshold schedule; for Oracle DPM it is the
        what-would-it-have-chosen approximation.
        """
        if at_time <= self._busy_until:
            return False
        return self.dpm.mode_after_idle(at_time - self._busy_until) != 0

    @property
    def mean_interarrival_s(self) -> float:
        """Mean gap between request arrivals (Figure 7b statistic)."""
        if self._arrivals < 2:
            return float("inf")
        return self._interarrival_sum / (self._arrivals - 1)

    @property
    def request_count(self) -> int:
        return self._arrivals

    # -- operation ----------------------------------------------------------

    def submit(
        self, arrival: float, block: int, nblocks: int = 1, is_write: bool = False
    ) -> DiskResponse:
        """Service one request; returns its timing.

        Raises:
            SimulationError: On out-of-order arrivals or use after
                :meth:`finalize`.
        """
        if self._finalized:
            raise SimulationError(f"disk {self.disk_id} already finalized")
        if self._last_arrival is not None:
            if arrival < self._last_arrival - TIME_EPS:
                raise SimulationError(
                    f"disk {self.disk_id}: arrival {arrival} precedes "
                    f"previous arrival {self._last_arrival}"
                )
            self._interarrival_sum += max(0.0, arrival - self._last_arrival)
        self._last_arrival = arrival
        self._arrivals += 1

        wake_delay = 0.0
        if arrival > self._busy_until + TIME_EPS:
            outcome = self.dpm.process_idle(arrival - self._busy_until, wake=True)
            self.account.add_idle(outcome)
            if self.probe is not None:
                self._publish_idle(arrival, outcome)
            wake_delay = outcome.wake_delay_s
            effective = arrival
        else:
            effective = self._busy_until

        if self.faults is not None:
            wake_delay += self.faults.delays(
                self.disk_id, arrival, woke=wake_delay > 0.0
            )
        start_service = effective + wake_delay
        breakdown, end_cyl = self.timing.service(
            start_service, self._cylinder, block, nblocks
        )
        self._cylinder = end_cyl
        energy = (
            breakdown.seek_s * self.power_model.seek_power_w
            + (breakdown.rotation_s + breakdown.transfer_s)
            * self.power_model.active_power_w
        )
        self.account.add_service(breakdown.total_s, energy)
        finish = start_service + breakdown.total_s
        self._busy_until = finish
        if self.probe is not None:
            self.probe(
                DiskService(
                    arrival,
                    self.disk_id,
                    start_service,
                    breakdown.total_s,
                    energy,
                    is_write,
                    nblocks,
                )
            )
        return DiskResponse(
            arrival=arrival,
            start_service=start_service,
            finish=finish,
            wake_delay_s=wake_delay,
            breakdown=breakdown,
        )

    def submit_quick(
        self, arrival: float, block: int, is_write: bool = False
    ) -> tuple[float, float]:
        """Single-block fast path; returns ``(response_time_s, wake_delay_s)``.

        Semantically identical to ``submit(arrival, block, 1, is_write)``
        — the columnar/legacy equivalence tests pin this bit for bit —
        but with the service-time math and the short-gap idle accounting
        inlined, and no :class:`DiskResponse` allocated. Falls back to
        :meth:`submit` whenever a probe or fault injector is attached so
        event streams stay complete and fault decisions are uniform.
        """
        if self.probe is not None or self.faults is not None:
            response = self.submit(arrival, block, 1, is_write)
            return response.finish - response.arrival, response.wake_delay_s
        if self._finalized:
            raise SimulationError(f"disk {self.disk_id} already finalized")
        last = self._last_arrival
        if last is not None:
            if arrival < last - TIME_EPS:
                raise SimulationError(
                    f"disk {self.disk_id}: arrival {arrival} precedes "
                    f"previous arrival {last}"
                )
            gap = arrival - last
            if gap > 0.0:
                self._interarrival_sum += gap
        self._last_arrival = arrival
        self._arrivals += 1

        account = self.account
        wake_delay = 0.0
        busy = self._busy_until
        if arrival > busy + TIME_EPS:
            duration = arrival - busy
            dpm = self.dpm
            if duration <= dpm.quick_idle_limit:
                # The whole gap is mode-0 residency: fold it into the
                # ledger directly (identical to add_idle of the
                # single-residency outcome; the transition/wake terms
                # are exact zeros).
                mode_time = account.mode_time_s
                mode_time[0] = mode_time.get(0, 0.0) + duration
                mode_energy = account.mode_energy_j
                mode_energy[0] = (
                    mode_energy.get(0, 0.0)
                    + duration * dpm.quick_idle_power_w
                )
            else:
                wake_delay = dpm.account_idle(duration, True, account)
            effective = arrival
        else:
            effective = busy

        start_service = effective + wake_delay
        timing = self.timing
        geometry = timing.geometry
        if type(geometry) is DiskGeometry and 0 <= block < geometry.num_blocks:
            # locate_cs + track_sectors inlined (uniform geometry only;
            # zoned/custom geometries take the polymorphic calls below)
            cylinder = block // geometry.blocks_per_cylinder
            sector = (
                block
                - cylinder * geometry.blocks_per_cylinder
            ) % geometry.blocks_per_track * geometry.sectors_per_block
            sector_angle = 1.0 / geometry.sectors_per_track
        else:
            cylinder, sector = geometry.locate_cs(block)
            sector_angle = 1.0 / geometry.track_sectors(cylinder)
        period = timing.rotation_period_s
        seek = timing.seek
        distance = cylinder - self._cylinder
        if distance < 0:
            distance = -distance
        if type(seek) is SeekModel:
            # seek_time inlined
            if distance == 0:
                seek_s = 0.0
            elif distance <= seek._knee:
                seek_s = seek._a + seek._b * (sqrt(distance) - 1.0)
            else:
                seek_s = seek._t_knee + seek._slope * (
                    distance - seek._knee
                )
        else:
            seek_s = seek.seek_time(distance)
        at_head = ((start_service + seek_s) / period) % 1.0
        target = sector * sector_angle
        delta = target - at_head
        if delta < 0:
            delta += 1.0
        rotation_s = delta * period
        transfer_s = geometry.sectors_per_block * sector_angle * period
        self._cylinder = cylinder
        power_model = self.power_model
        energy = (
            seek_s * power_model.seek_power_w
            + (rotation_s + transfer_s) * power_model.active_power_w
        )
        total = seek_s + rotation_s + transfer_s
        account.service_time_s += total
        account.service_energy_j += energy
        account.requests += 1
        finish = start_service + total
        self._busy_until = finish
        return finish - arrival, wake_delay

    def finalize(self, end_time: float) -> None:
        """Account the trailing idle gap up to the end of the trace.

        No spin-up is charged — nothing arrives after the trace ends.
        Idempotent per disk; further submits are rejected.
        """
        if self._finalized:
            return
        if end_time > self._busy_until + TIME_EPS:
            outcome = self.dpm.process_idle(
                end_time - self._busy_until, wake=False
            )
            self.account.add_idle(outcome)
            if self.probe is not None:
                self._publish_idle(end_time, outcome)
            self._busy_until = end_time
        self._finalized = True
        if self.probe is not None:
            self.probe(
                DiskFinalized(end_time, self.disk_id, self.account.total_energy_j)
            )

    def _publish_idle(self, time: float, outcome: IdleOutcome) -> None:
        """Emit one idle gap's reconstruction as events.

        Residency energy is attributed per mode with exactly the
        proportional split :meth:`EnergyAccount.add_idle` applies, so
        summing event energies reproduces the ledger.
        """
        probe = self.probe
        residency_energy = outcome.energy_j - outcome.transition_energy_j
        total_res = sum(outcome.mode_residency_s.values())
        for mode, seconds in outcome.mode_residency_s.items():
            share = (
                residency_energy * (seconds / total_res)
                if total_res > 0
                else 0.0
            )
            probe(StateDwell(time, self.disk_id, mode, seconds, share))
        if outcome.spindowns:
            probe(
                DiskSpinDown(
                    time,
                    self.disk_id,
                    outcome.spindowns,
                    outcome.transition_time_s,
                    outcome.transition_energy_j,
                )
            )
        if outcome.spinups:
            probe(
                DiskSpinUp(
                    time,
                    self.disk_id,
                    outcome.wake_delay_s,
                    outcome.wake_energy_j,
                )
            )
