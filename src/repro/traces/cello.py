"""Cello96-like workload: synthetic stand-in for HP's file-server trace.

Table 2 and Section 5.2 pin down what matters: 19 disks, 38% writes,
5.61 ms mean inter-arrival, and — crucially — about 64% of accesses are
cold misses, with inter-arrival gaps so short that even the cold-miss
stream leaves little parkable idle time. This is the regime where the
paper reports PA-LRU gains only 2–3% over LRU and an infinite cache
only ~12%: the workload offers almost no leverage.

The generator realizes that regime directly:

* most accesses walk fresh addresses in sequential runs (file-server
  scans), the remainder reuse a modest working set — so roughly the
  published cold-miss fraction emerges at the cache;
* traffic is spread over all 19 disks with a geometric rate skew and
  bursty (Pareto) per-disk arrivals, so the quietest disks' *cold-miss*
  streams straddle the shallow break-even times: an infinite cache can
  harvest modest savings there, a finite cache cannot do much better
  than LRU, and PA-LRU classifies every disk regular (cold fraction
  ≈ 64% exceeds any sensible ``alpha``), collapsing onto LRU — exactly
  the paper's result.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.arrivals import ParetoArrivals
from repro.traces.columnar import ColumnarTrace
from repro.traces.locality import ZipfStackModel
from repro.traces.record import IORequest
from repro.traces.streaming import TraceRow, build_columnar
from repro.units import DEFAULT_BLOCK_SIZE, GIB


@dataclass(frozen=True)
class CelloTraceConfig:
    """Knobs for the Cello96-like generator (defaults match Table 2)."""

    duration_s: float = 1800.0
    num_disks: int = 19
    write_ratio: float = 0.38
    mean_interarrival_s: float = 0.00561
    #: Fraction of accesses that reuse a previously-touched block;
    #: 1 - this is (approximately) the cold-miss fraction.
    reuse_probability: float = 0.36
    zipf_a: float = 1.3
    stack_depth: int = 1 << 15
    #: Sequential-scan run length for fresh addresses.
    scan_run_blocks: int = 16
    #: Per-disk rate skew: disk i gets weight ``rate_skew ** i``.
    rate_skew: float = 0.7
    pareto_shape: float = 1.4
    disk_size_bytes: int = 18 * GIB
    block_size: int = DEFAULT_BLOCK_SIZE
    seed: int = 11

    def __post_init__(self) -> None:
        if not 0.0 <= self.reuse_probability <= 1.0:
            raise ConfigurationError("reuse_probability must be in [0, 1]")
        if self.scan_run_blocks < 1:
            raise ConfigurationError("scan_run_blocks must be >= 1")
        if not 0.0 < self.rate_skew <= 1.0:
            raise ConfigurationError("rate_skew must be in (0, 1]")

    def disk_rates(self) -> list[float]:
        """Per-disk request rates (Hz), geometrically skewed."""
        weights = [self.rate_skew**i for i in range(self.num_disks)]
        total = sum(weights)
        overall = 1.0 / self.mean_interarrival_s
        return [overall * w / total for w in weights]


def iter_cello_rows(
    config: CelloTraceConfig = CelloTraceConfig(),
) -> Iterator[TraceRow]:
    """The Cello96 generation loop as a streaming row source (DESIGN §14).

    Draw order is part of the trace's identity, so both public
    generators funnel through this one loop.
    """
    rng = np.random.default_rng(config.seed)
    disk_blocks = config.disk_size_bytes // config.block_size
    # one reuse stack per disk: traffic is per-disk, blocks don't migrate
    stacks = [
        ZipfStackModel(
            rng=rng,
            reuse_probability=config.reuse_probability,
            zipf_a=config.zipf_a,
            max_depth=config.stack_depth,
        )
        for _ in range(config.num_disks)
    ]
    processes = [
        ParetoArrivals(1.0 / rate, rng, shape=config.pareto_shape)
        for rate in config.disk_rates()
    ]
    # per-disk scan cursors: fresh addresses advance sequentially
    cursors = [int(rng.integers(disk_blocks)) for _ in range(config.num_disks)]
    remaining_run = [0] * config.num_disks
    heap: list[tuple[float, int]] = []
    for disk, process in enumerate(processes):
        heapq.heappush(heap, (process.next_gap(), disk))

    while heap:
        time, disk = heapq.heappop(heap)
        if time > config.duration_s:
            continue
        key = stacks[disk].next_key()
        if key is None:
            # fresh address: continue (or restart) this disk's scan run
            if remaining_run[disk] <= 0:
                cursors[disk] = int(rng.integers(disk_blocks))
                remaining_run[disk] = config.scan_run_blocks
            block = cursors[disk]
            cursors[disk] = (cursors[disk] + 1) % disk_blocks
            remaining_run[disk] -= 1
            key = (disk, block)
            stacks[disk].push(key)
        yield (time, disk, key[1], 1, bool(rng.random() < config.write_ratio))
        heapq.heappush(heap, (time + processes[disk].next_gap(), disk))


def generate_cello_trace(
    config: CelloTraceConfig = CelloTraceConfig(),
) -> list[IORequest]:
    """Generate the Cello96-like trace (deterministic given the seed)."""
    return [
        IORequest(time=t, disk=d, block=b, is_write=w)
        for t, d, b, _, w in iter_cello_rows(config)
    ]


def generate_cello_trace_columnar(
    config: CelloTraceConfig = CelloTraceConfig(),
) -> ColumnarTrace:
    """:func:`generate_cello_trace` streamed straight into columns.

    Same seed, same draws, same requests — an equivalence test pins the
    two representations to identical fingerprints.
    """
    return build_columnar(iter_cello_rows(config))
