"""The workload zoo: streaming trace families beyond the paper's two.

The paper evaluates PA-LRU/OPG on exactly two workloads (OLTP and
Cello96). These three families widen the slice, each modelled after a
published workload shape and each realized as a *streaming* generator:
the loop yields ``(time, disk, block, nblocks, is_write)`` rows that
:mod:`repro.traces.streaming` appends into column chunks, so the peak
memory is the finished columns — never a boxed request list.

* :func:`generate_dbms_trace` — query-driven DBMS storage traffic with
  per-query think times and table-scan bursts, after the energy-aware
  DBMS storage work (Behzadnia et al., arXiv:1703.02591): closed-loop
  clients issue point lookups against Zipf-hot rows and occasional
  sequential scans over table extents.
* :func:`generate_cdn_trace` — a CDN-style object workload with Zipf
  popularity that *drifts over time*, after the Zipf eviction-energy
  analysis (Sziklay & Jursonovics, arXiv:2503.02504): temporal reuse
  rides the Fenwick-indexed :class:`~repro.traces.locality.ZipfStackModel`
  while the fresh-object window slides across the catalog, so the hot
  set a policy learned one popularity epoch ago decays the next.
* :func:`generate_tenant_trace` — diurnal multi-tenant load: each
  tenant owns a disk band and a Zipf working set, and its request rate
  follows a phase-shifted sinusoid, so at any instant some tenants are
  near peak while others idle — the regime where per-disk
  classification has the most to harvest.

All generators are deterministic given their config's ``seed`` and are
registered in :data:`ZOO_WORKLOADS` for the CLI and campaign specs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.columnar import ColumnarTrace
from repro.traces.locality import ZipfPopularity, ZipfStackModel
from repro.traces.streaming import TraceRow, build_columnar

#: Knuth's multiplicative hash constant — gives each CDN object a
#: deterministic pseudo-random size without consuming an RNG draw.
_OBJECT_HASH = 2654435761


# --------------------------------------------------------------------------
# (a) DBMS query-driven workload (arXiv:1703.02591)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DBMSTraceConfig:
    """Knobs for the query-driven DBMS generator.

    ``num_clients`` closed-loop sessions alternate think time and query
    execution. A query is either a *point lookup* (``lookup_blocks``
    accesses against the table's Zipf-hot rows, the last one an update
    with probability ``update_fraction``) or a *table scan*
    (``scan_blocks`` sequential reads from a random extent). One table
    lives on each disk, so scans are the per-disk burst traffic and
    lookups the skewed steady state.
    """

    duration_s: float = 600.0
    num_disks: int = 8
    num_clients: int = 16
    mean_think_s: float = 0.4
    scan_fraction: float = 0.08
    scan_blocks: int = 192
    lookup_blocks: int = 4
    intra_query_gap_s: float = 0.0008
    update_fraction: float = 0.25
    table_blocks: int = 24_000
    table_zipf_a: float = 1.2
    seed: int = 1703

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be > 0")
        if self.num_disks < 1 or self.num_clients < 1:
            raise ConfigurationError("need >= 1 disk and >= 1 client")
        if not 0.0 <= self.scan_fraction <= 1.0:
            raise ConfigurationError("scan_fraction must be in [0, 1]")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ConfigurationError("update_fraction must be in [0, 1]")
        if self.lookup_blocks < 1 or self.scan_blocks < 1:
            raise ConfigurationError("query sizes must be >= 1 block")
        if self.mean_think_s <= 0 or self.intra_query_gap_s <= 0:
            raise ConfigurationError("think/gap times must be > 0")
        if self.table_blocks < self.scan_blocks:
            raise ConfigurationError("table_blocks must cover one scan")


def iter_dbms_rows(
    config: DBMSTraceConfig = DBMSTraceConfig(),
) -> Iterator[TraceRow]:
    """Stream the DBMS workload rows in global time order.

    Each client is one entry on an event heap carrying its next access
    time; popping emits a single access and schedules either the
    query's next access (``intra_query_gap_s`` later) or — when the
    query finishes — the next query after an exponential think time.
    """
    rng = np.random.default_rng(config.seed)
    hot_rows = [
        ZipfPopularity(
            footprint=config.table_blocks,
            rng=rng,
            zipf_a=config.table_zipf_a,
        )
        for _ in range(config.num_disks)
    ]
    # per-client query state: remaining accesses, table, scan cursor
    remaining = [0] * config.num_clients
    table = [0] * config.num_clients
    scan_cursor = [-1] * config.num_clients  # -1 = point lookup query
    heap: list[tuple[float, int]] = []
    for client in range(config.num_clients):
        heapq.heappush(
            heap, (float(rng.exponential(config.mean_think_s)), client)
        )
    while heap:
        time, client = heapq.heappop(heap)
        if time > config.duration_s:
            continue  # this client's session is over
        if remaining[client] == 0:
            # plan a new query at its first access
            table[client] = int(rng.integers(config.num_disks))
            if rng.random() < config.scan_fraction:
                remaining[client] = config.scan_blocks
                scan_cursor[client] = int(
                    rng.integers(config.table_blocks - config.scan_blocks + 1)
                )
            else:
                remaining[client] = config.lookup_blocks
                scan_cursor[client] = -1
        disk = table[client]
        if scan_cursor[client] >= 0:
            block = scan_cursor[client]
            scan_cursor[client] += 1
            is_write = False
        else:
            block = hot_rows[disk].next_block()
            # the last touch of a point lookup may be the row update
            is_write = remaining[client] == 1 and bool(
                rng.random() < config.update_fraction
            )
        yield (time, disk, block, 1, is_write)
        remaining[client] -= 1
        if remaining[client] > 0:
            next_time = time + config.intra_query_gap_s
        else:
            next_time = time + float(rng.exponential(config.mean_think_s))
        heapq.heappush(heap, (next_time, client))


def generate_dbms_trace(
    config: DBMSTraceConfig = DBMSTraceConfig(),
) -> ColumnarTrace:
    """Generate the DBMS query-driven trace (streamed, deterministic)."""
    return build_columnar(iter_dbms_rows(config))


# --------------------------------------------------------------------------
# (b) CDN object workload with time-varying popularity (arXiv:2503.02504)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CDNTraceConfig:
    """Knobs for the CDN-style Zipf object generator.

    Requests arrive Poisson at ``1 / mean_interarrival_s``. With
    probability ``reuse_probability`` a request re-fetches a cached-hot
    object through the Fenwick-indexed Zipf reuse stack; otherwise it
    faults in a fresh object drawn uniformly from the *current
    popularity window* — a span of ``window_objects`` ids that slides
    by ``window_drift`` every ``popularity_shift_s`` seconds, modelling
    content churn. Objects span ``1..max_object_blocks`` blocks
    (deterministic per id) and are sharded over the disks by id.
    """

    duration_s: float = 600.0
    num_disks: int = 12
    mean_interarrival_s: float = 0.004
    reuse_probability: float = 0.82
    zipf_a: float = 1.25
    stack_depth: int = 1 << 14
    catalog_objects: int = 500_000
    window_objects: int = 20_000
    window_drift: int = 5_000
    popularity_shift_s: float = 60.0
    max_object_blocks: int = 8
    write_ratio: float = 0.02
    seed: int = 2503

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.mean_interarrival_s <= 0:
            raise ConfigurationError("duration and inter-arrival must be > 0")
        if self.num_disks < 1:
            raise ConfigurationError("num_disks must be >= 1")
        if not 0.0 <= self.reuse_probability <= 1.0:
            raise ConfigurationError("reuse_probability must be in [0, 1]")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError("write_ratio must be in [0, 1]")
        if not 0 < self.window_objects <= self.catalog_objects:
            raise ConfigurationError(
                "need 0 < window_objects <= catalog_objects"
            )
        if self.window_drift < 0 or self.popularity_shift_s <= 0:
            raise ConfigurationError(
                "window_drift must be >= 0 and popularity_shift_s > 0"
            )
        if self.max_object_blocks < 1:
            raise ConfigurationError("max_object_blocks must be >= 1")


def _object_blocks(obj: int, max_blocks: int) -> int:
    """Deterministic per-object size in blocks (no RNG draw consumed)."""
    return 1 + (obj * _OBJECT_HASH) % max_blocks


def iter_cdn_rows(
    config: CDNTraceConfig = CDNTraceConfig(),
) -> Iterator[TraceRow]:
    """Stream the CDN workload rows (Poisson arrivals, drifting window)."""
    rng = np.random.default_rng(config.seed)
    stack = ZipfStackModel(
        rng=rng,
        reuse_probability=config.reuse_probability,
        zipf_a=config.zipf_a,
        max_depth=config.stack_depth,
    )
    num_disks = config.num_disks
    max_blocks = config.max_object_blocks
    window_span = max(1, config.catalog_objects - config.window_objects + 1)
    time = 0.0
    while True:
        time += float(rng.exponential(config.mean_interarrival_s))
        if time > config.duration_s:
            return
        obj = stack.next_key()
        if obj is None:
            epoch = int(time / config.popularity_shift_s)
            window_start = (epoch * config.window_drift) % window_span
            obj = window_start + int(rng.integers(config.window_objects))
            stack.push(obj)
        disk = obj % num_disks
        block = (obj // num_disks) * max_blocks
        yield (
            time,
            disk,
            block,
            _object_blocks(obj, max_blocks),
            bool(rng.random() < config.write_ratio),
        )


def generate_cdn_trace(
    config: CDNTraceConfig = CDNTraceConfig(),
) -> ColumnarTrace:
    """Generate the CDN object trace (streamed, deterministic)."""
    return build_columnar(iter_cdn_rows(config))


# --------------------------------------------------------------------------
# (c) Diurnal multi-tenant workload
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantTraceConfig:
    """Knobs for the diurnal multi-tenant generator.

    Each tenant owns ``disks_per_tenant`` disks and a Zipf working set
    of ``footprint_blocks`` spread across them. Tenant ``i``'s request
    rate follows ``base_rate_hz * (1 + amplitude * sin(2*pi * (t /
    period_s + i / num_tenants)))`` — the phase shift staggers the
    tenants' peaks, so the array always has both busy and parkable
    bands. Arrivals are drawn by thinning a peak-rate Poisson process.
    """

    duration_s: float = 1800.0
    num_tenants: int = 6
    disks_per_tenant: int = 3
    base_rate_hz: float = 2.5
    amplitude: float = 0.85
    period_s: float = 600.0
    footprint_blocks: int = 6_000
    zipf_a: float = 1.1
    write_ratio: float = 0.3
    seed: int = 77

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.period_s <= 0:
            raise ConfigurationError("duration_s and period_s must be > 0")
        if self.num_tenants < 1 or self.disks_per_tenant < 1:
            raise ConfigurationError("need >= 1 tenant and >= 1 disk each")
        if self.base_rate_hz <= 0:
            raise ConfigurationError("base_rate_hz must be > 0")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError(
                "amplitude must be in [0, 1) so the rate stays positive"
            )
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError("write_ratio must be in [0, 1]")
        if self.footprint_blocks < 1:
            raise ConfigurationError("footprint_blocks must be >= 1")

    @property
    def num_disks(self) -> int:
        return self.num_tenants * self.disks_per_tenant


def iter_tenant_rows(
    config: TenantTraceConfig = TenantTraceConfig(),
) -> Iterator[TraceRow]:
    """Stream the multi-tenant rows (thinned phase-shifted Poisson)."""
    rng = np.random.default_rng(config.seed)
    working_sets = [
        ZipfPopularity(
            footprint=config.footprint_blocks,
            rng=rng,
            zipf_a=config.zipf_a,
        )
        for _ in range(config.num_tenants)
    ]
    peak_rate = config.base_rate_hz * (1.0 + config.amplitude)
    peak_gap_s = 1.0 / peak_rate
    two_pi = 2.0 * math.pi
    dpt = config.disks_per_tenant
    heap: list[tuple[float, int]] = []
    for tenant in range(config.num_tenants):
        heapq.heappush(heap, (float(rng.exponential(peak_gap_s)), tenant))
    while heap:
        time, tenant = heapq.heappop(heap)
        if time > config.duration_s:
            continue  # this tenant's stream is exhausted
        phase = time / config.period_s + tenant / config.num_tenants
        rate = config.base_rate_hz * (
            1.0 + config.amplitude * math.sin(two_pi * phase)
        )
        # thinning: accept the candidate with probability rate / peak
        if rng.random() < rate / peak_rate:
            slot = working_sets[tenant].next_block()
            disk = tenant * dpt + slot % dpt
            block = slot // dpt
            yield (time, disk, block, 1, bool(rng.random() < config.write_ratio))
        heapq.heappush(
            heap, (time + float(rng.exponential(peak_gap_s)), tenant)
        )


def generate_tenant_trace(
    config: TenantTraceConfig = TenantTraceConfig(),
) -> ColumnarTrace:
    """Generate the diurnal multi-tenant trace (streamed, deterministic)."""
    return build_columnar(iter_tenant_rows(config))


#: Workload-family registry: name -> (config class, streaming generator).
#: The CLI ``generate``/``simulate --workload`` choices and the campaign
#: spec ``trace.workload`` names resolve through this table.
ZOO_WORKLOADS = {
    "dbms": (DBMSTraceConfig, generate_dbms_trace),
    "cdn": (CDNTraceConfig, generate_cdn_trace),
    "tenant": (TenantTraceConfig, generate_tenant_trace),
}
