"""Workloads: trace records, arrival/locality models, and generators.

Real traces from the paper (the VI-attached SQL Server TPC-C trace and
HP's Cello96) are proprietary; :mod:`repro.traces.oltp` and
:mod:`repro.traces.cello` generate seeded synthetic equivalents that
match the published characteristics (Table 2) and the distributional
properties the paper's analysis says drive the results. The Table 3
parameterized generator used by the write-policy study lives in
:mod:`repro.traces.synthetic`, the wider workload zoo (DBMS, CDN,
multi-tenant families) in :mod:`repro.traces.zoo`, and real-trace
importers (blktrace text, iostat reports) in
:mod:`repro.traces.ingest`. All of them stream rows through
:mod:`repro.traces.streaming` into columnar form.
"""

from repro.traces.arrivals import ExponentialArrivals, ParetoArrivals
from repro.traces.cello import (
    CelloTraceConfig,
    generate_cello_trace,
    generate_cello_trace_columnar,
)
from repro.traces.columnar import ColumnarTrace, SharedTraceDescriptor, as_columnar
from repro.traces.fingerprint import trace_fingerprint
from repro.traces.ingest import (
    IMPORT_FORMATS,
    ImportSummary,
    import_to_csv,
    import_trace,
    sniff_format,
)
from repro.traces.locality import SpatialModel, ZipfStackModel
from repro.traces.oltp import (
    OLTPTraceConfig,
    generate_oltp_trace,
    generate_oltp_trace_columnar,
)
from repro.traces.record import IORequest, expand_accesses, iter_accesses
from repro.traces.stats import TraceCharacteristics, characterize
from repro.traces.streaming import TraceBuilder, build_columnar
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    generate_synthetic_trace,
    generate_synthetic_trace_columnar,
)
from repro.traces.zoo import (
    ZOO_WORKLOADS,
    CDNTraceConfig,
    DBMSTraceConfig,
    TenantTraceConfig,
    generate_cdn_trace,
    generate_dbms_trace,
    generate_tenant_trace,
)

__all__ = [
    "CDNTraceConfig",
    "CelloTraceConfig",
    "ColumnarTrace",
    "DBMSTraceConfig",
    "ExponentialArrivals",
    "IMPORT_FORMATS",
    "IORequest",
    "ImportSummary",
    "OLTPTraceConfig",
    "ParetoArrivals",
    "SharedTraceDescriptor",
    "SpatialModel",
    "SyntheticTraceConfig",
    "TenantTraceConfig",
    "TraceBuilder",
    "TraceCharacteristics",
    "ZOO_WORKLOADS",
    "ZipfStackModel",
    "as_columnar",
    "build_columnar",
    "characterize",
    "expand_accesses",
    "generate_cdn_trace",
    "generate_cello_trace",
    "generate_cello_trace_columnar",
    "generate_dbms_trace",
    "generate_oltp_trace",
    "generate_oltp_trace_columnar",
    "generate_synthetic_trace",
    "generate_synthetic_trace_columnar",
    "generate_tenant_trace",
    "import_to_csv",
    "import_trace",
    "sniff_format",
    "trace_fingerprint",
]
