"""Workloads: trace records, arrival/locality models, and generators.

Real traces from the paper (the VI-attached SQL Server TPC-C trace and
HP's Cello96) are proprietary; :mod:`repro.traces.oltp` and
:mod:`repro.traces.cello` generate seeded synthetic equivalents that
match the published characteristics (Table 2) and the distributional
properties the paper's analysis says drive the results. The Table 3
parameterized generator used by the write-policy study lives in
:mod:`repro.traces.synthetic`.
"""

from repro.traces.arrivals import ExponentialArrivals, ParetoArrivals
from repro.traces.cello import CelloTraceConfig, generate_cello_trace
from repro.traces.columnar import ColumnarTrace, SharedTraceDescriptor, as_columnar
from repro.traces.fingerprint import trace_fingerprint
from repro.traces.locality import SpatialModel, ZipfStackModel
from repro.traces.oltp import OLTPTraceConfig, generate_oltp_trace
from repro.traces.record import IORequest, expand_accesses, iter_accesses
from repro.traces.stats import TraceCharacteristics, characterize
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    generate_synthetic_trace,
    generate_synthetic_trace_columnar,
)

__all__ = [
    "CelloTraceConfig",
    "ColumnarTrace",
    "ExponentialArrivals",
    "IORequest",
    "OLTPTraceConfig",
    "ParetoArrivals",
    "SharedTraceDescriptor",
    "SpatialModel",
    "SyntheticTraceConfig",
    "TraceCharacteristics",
    "ZipfStackModel",
    "as_columnar",
    "characterize",
    "expand_accesses",
    "generate_cello_trace",
    "generate_oltp_trace",
    "generate_synthetic_trace",
    "generate_synthetic_trace_columnar",
    "iter_accesses",
    "trace_fingerprint",
]
