"""Real-trace ingestion: blktrace-text and iostat importers.

The simulator's native format is the ``repro generate`` CSV, but real
block traces arrive as ``blkparse`` text dumps or as ``iostat -d``
interval reports. This module parses both line-by-line — no file-sized
intermediate lists — normalizes them, and streams the rows through
:mod:`repro.traces.streaming` into a
:class:`~repro.traces.columnar.ColumnarTrace` (or straight to a native
CSV via :func:`import_to_csv`, which holds only one interval of rows at
a time).

Normalization rules (DESIGN §14):

* **time rebasing** — the first kept event becomes ``t = 0``; input
  timestamps must be non-decreasing (the importer reports the offending
  line rather than silently reordering);
* **disk-id compaction** — ``major,minor`` pairs (blktrace) or device
  names (iostat) are mapped to dense disk ids in first-seen order;
* **sector→block remapping** — blktrace sector offsets (512-byte
  units) are converted to simulator blocks of ``block_size`` bytes.

Malformed input raises :class:`~repro.errors.TraceError` carrying
``path:line_no`` so the broken record can be found with a text editor.

blktrace text records look like::

    8,0 3 1 0.000000000 697 Q W 223490 + 8 [kjournald]

(``major,minor cpu seq time pid action rwbs sector + nsectors [proc]``).
Only *queue* events (action ``Q``) are imported — they mark request
arrival at the block layer, which is what the cache simulator consumes;
other actions describe the same request's later lifecycle.

``iostat -d`` reports carry no per-request detail, so the importer
*synthesizes* a deterministic request stream per device interval:
``tps × interval`` requests, evenly spaced, split into reads and writes
in proportion to the transferred kilobytes, each covering the device's
share of blocks at a sequential per-device cursor. The result preserves
the rate and read/write envelope of the real system — enough for the
energy model, which cares about arrival gaps, not addresses.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import ConfigurationError, TraceError
from repro.traces.columnar import ColumnarTrace
from repro.traces.streaming import TraceRow, build_columnar
from repro.units import DEFAULT_BLOCK_SIZE, KIB, SECTOR_SIZE

#: blktrace ``rwbs`` flags that describe non-data requests we skip
#: (flush/barrier, discard, none) rather than reject.
_RWBS_SKIP = frozenset("FDN")

_CSV_HEADER = ("time", "disk", "block", "nblocks", "op")


class ImportStats:
    """Mutable line counters threaded through the streaming parsers."""

    __slots__ = (
        "lines",
        "requests",
        "skipped",
        "disks",
        "cursors",
        "last_time",
    )

    def __init__(self) -> None:
        self.lines = 0
        self.requests = 0
        self.skipped = 0
        self.disks: dict[str, int] = {}
        self.cursors: dict[str, int] = {}
        self.last_time = 0.0

    def disk_id(self, device: str) -> int:
        """Dense disk id for ``device``, minted in first-seen order."""
        disk = self.disks.get(device)
        if disk is None:
            disk = len(self.disks)
            self.disks[device] = disk
        return disk


@dataclass(frozen=True)
class ImportSummary:
    """What an import produced — printed by ``repro trace import``."""

    format: str
    lines: int
    requests: int
    skipped: int
    num_disks: int
    duration_s: float


# --------------------------------------------------------------------------
# blktrace text
# --------------------------------------------------------------------------


def iter_blktrace_rows(
    path: str | Path,
    block_size: int = DEFAULT_BLOCK_SIZE,
    stats: ImportStats | None = None,
) -> Iterator[TraceRow]:
    """Stream normalized rows from a ``blkparse`` text dump."""
    if stats is None:
        stats = ImportStats()
    base_time: float | None = None
    previous = -1.0
    with open(path, encoding="utf-8", errors="replace") as fh:
        for line_no, line in enumerate(fh, start=1):
            stats.lines = line_no
            fields = line.split()
            if not fields:
                stats.skipped += 1
                continue
            if line.startswith(("CPU", "Total", "Throughput", "Events")):
                # blkparse appends a summary table; the events are over.
                break
            if len(fields) < 7:
                raise TraceError(
                    f"{path}:{line_no}: truncated blktrace record"
                )
            action = fields[5]
            if action != "Q":
                stats.skipped += 1
                continue
            rwbs = fields[6]
            if "W" in rwbs:
                is_write = True
            elif "R" in rwbs:
                is_write = False
            elif set(rwbs) <= _RWBS_SKIP:
                stats.skipped += 1
                continue
            else:
                raise TraceError(f"{path}:{line_no}: unknown rwbs {rwbs!r}")
            if len(fields) < 10 or fields[8] != "+":
                raise TraceError(
                    f"{path}:{line_no}: truncated blktrace record"
                )
            try:
                time = float(fields[3])
            except ValueError:
                raise TraceError(
                    f"{path}:{line_no}: bad timestamp {fields[3]!r}"
                ) from None
            try:
                sector = int(fields[7])
                nsectors = int(fields[9])
            except ValueError as exc:
                raise TraceError(f"{path}:{line_no}: {exc}") from exc
            if time < previous:
                raise TraceError(
                    f"{path}:{line_no}: timestamps go backwards"
                )
            previous = time
            if base_time is None:
                base_time = time
            disk = stats.disk_id(fields[0])
            start = sector * SECTOR_SIZE
            end = start + max(1, nsectors) * SECTOR_SIZE
            block = start // block_size
            nblocks = (end - 1) // block_size - block + 1
            stats.requests += 1
            stats.last_time = time - base_time
            yield (time - base_time, disk, block, nblocks, is_write)


# --------------------------------------------------------------------------
# iostat -d interval reports
# --------------------------------------------------------------------------


def _iostat_columns(header: list[str], path: str | Path, line_no: int):
    """Resolve the per-device rate columns of a ``Device`` header.

    Returns ``(reads_col, writes_col, rkb_col, wkb_col)`` as indices
    into the numeric fields (the device name is field 0, so numeric
    field ``i`` is token ``i + 1``). The classic ``-d`` layout exposes
    only ``tps``; the extended ``-x`` layout splits reads and writes.
    """
    names = header[1:]
    index = {name: i for i, name in enumerate(names)}
    if "r/s" in index and "w/s" in index:
        return (
            index["r/s"],
            index["w/s"],
            index.get("rkB/s"),
            index.get("wkB/s"),
        )
    if "tps" in index:
        return (
            index["tps"],
            None,
            index.get("kB_read/s"),
            index.get("kB_wrtn/s"),
        )
    raise TraceError(f"{path}:{line_no}: unsupported iostat header")


def _interval_rows(
    rows: list[tuple[str, list[float]]],
    columns,
    start: float,
    interval_s: float,
    block_size: int,
    stats: ImportStats,
) -> list[TraceRow]:
    """Synthesize one interval's request stream from device rates."""
    reads_col, writes_col, rkb_col, wkb_col = columns
    out: list[TraceRow] = []
    for device, values in rows:
        if writes_col is None:
            total = values[reads_col] * interval_s
            rkb = values[rkb_col] * interval_s if rkb_col is not None else 0.0
            wkb = values[wkb_col] * interval_s if wkb_col is not None else 0.0
            transferred = rkb + wkb
            writes = (
                int(round(total * wkb / transferred)) if transferred else 0
            )
            reads = int(round(total)) - writes
        else:
            reads = int(round(values[reads_col] * interval_s))
            writes = int(round(values[writes_col] * interval_s))
            rkb = values[rkb_col] * interval_s if rkb_col is not None else 0.0
            wkb = values[wkb_col] * interval_s if wkb_col is not None else 0.0
        count = reads + writes
        if count == 0:
            continue
        disk = stats.disk_id(device)
        read_blocks = max(reads, int(rkb * KIB) // block_size)
        write_blocks = max(writes, int(wkb * KIB) // block_size)
        cursor = stats.cursors.get(device, 0)
        gap = interval_s / (count + 1)
        for i in range(count):
            is_write = i >= reads
            if is_write:
                nblocks = max(1, write_blocks // max(1, writes))
            else:
                nblocks = max(1, read_blocks // max(1, reads))
            out.append(
                (start + (i + 1) * gap, disk, cursor, nblocks, is_write)
            )
            cursor += nblocks
        stats.cursors[device] = cursor
    out.sort(key=lambda row: (row[0], row[1]))
    stats.requests += len(out)
    if out:
        stats.last_time = out[-1][0]
    return out


def iter_iostat_rows(
    path: str | Path,
    block_size: int = DEFAULT_BLOCK_SIZE,
    interval_s: float = 1.0,
    stats: ImportStats | None = None,
) -> Iterator[TraceRow]:
    """Stream synthesized rows from an ``iostat -d`` report.

    The first ``Device`` block reports since-boot averages; it only
    registers the devices. Each subsequent block is one measurement
    interval of ``interval_s`` seconds.
    """
    if interval_s <= 0:
        raise ConfigurationError("interval_s must be > 0")
    if stats is None:
        stats = ImportStats()
    columns = None
    pending: list[tuple[str, list[float]]] = []
    sample = 0  # completed Device blocks
    in_block = False
    skip_next = False
    with open(path, encoding="utf-8", errors="replace") as fh:
        for line_no, line in enumerate(fh, start=1):
            stats.lines = line_no
            fields = line.split()
            if skip_next:
                # the data line under an avg-cpu header
                skip_next = False
                stats.skipped += 1
                continue
            if not fields:
                if in_block:
                    if sample > 0:
                        yield from _interval_rows(
                            pending,
                            columns,
                            (sample - 1) * interval_s,
                            interval_s,
                            block_size,
                            stats,
                        )
                    pending = []
                    sample += 1
                    in_block = False
                continue
            if fields[0] == "Device" or fields[0] == "Device:":
                columns = _iostat_columns(fields, path, line_no)
                in_block = True
                continue
            if fields[0].startswith("avg-cpu"):
                skip_next = True
                stats.skipped += 1
                continue
            if not in_block:
                # the "Linux ... (host)" banner or a timestamp line
                stats.skipped += 1
                continue
            try:
                values = [float(token) for token in fields[1:]]
            except ValueError as exc:
                raise TraceError(f"{path}:{line_no}: {exc}") from exc
            if len(values) < 1:
                raise TraceError(f"{path}:{line_no}: truncated iostat row")
            pending.append((fields[0], values))
    if in_block and sample > 0:
        yield from _interval_rows(
            pending,
            columns,
            (sample - 1) * interval_s,
            interval_s,
            block_size,
            stats,
        )


# --------------------------------------------------------------------------
# front door
# --------------------------------------------------------------------------

#: format name -> streaming row parser.
IMPORT_FORMATS = {
    "blktrace": iter_blktrace_rows,
    "iostat": iter_iostat_rows,
}


def sniff_format(path: str | Path) -> str:
    """Guess the import format from the first few lines of ``path``."""
    with open(path, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            fields = line.split()
            if not fields:
                continue
            if fields[0] == "Linux" or fields[0].startswith("Device"):
                return "iostat"
            first = fields[0].split(",")
            if len(first) == 2 and all(p.isdigit() for p in first):
                return "blktrace"
            break
    raise TraceError(f"{path}: cannot determine trace format")


def _make_rows(
    path: str | Path,
    fmt: str | None,
    block_size: int,
    interval_s: float,
    stats: ImportStats,
) -> tuple[str, Iterator[TraceRow]]:
    resolved = fmt or sniff_format(path)
    if resolved == "blktrace":
        return resolved, iter_blktrace_rows(path, block_size, stats)
    if resolved == "iostat":
        return resolved, iter_iostat_rows(path, block_size, interval_s, stats)
    raise ConfigurationError(
        f"unknown trace format {resolved!r}; "
        f"choose from {sorted(IMPORT_FORMATS)}"
    )


def import_trace(
    path: str | Path,
    fmt: str | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    interval_s: float = 1.0,
) -> tuple[ColumnarTrace, ImportSummary]:
    """Import a real trace into a :class:`ColumnarTrace`.

    ``fmt`` is one of :data:`IMPORT_FORMATS` or ``None`` to sniff.
    """
    stats = ImportStats()
    resolved, rows = _make_rows(path, fmt, block_size, interval_s, stats)
    trace = build_columnar(rows)
    return trace, _summary(resolved, stats, trace_len=len(trace))


def import_to_csv(
    src: str | Path,
    dst: str | Path,
    fmt: str | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    interval_s: float = 1.0,
) -> ImportSummary:
    """Import ``src`` straight to a native trace CSV at ``dst``.

    Rows stream from the parser to the CSV writer one at a time, so
    peak memory is independent of the trace length.
    """
    stats = ImportStats()
    resolved, rows = _make_rows(src, fmt, block_size, interval_s, stats)
    count = 0
    with open(dst, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        for time, disk, block, nblocks, is_write in rows:
            writer.writerow(
                [
                    repr(float(time)),
                    disk,
                    block,
                    nblocks,
                    "W" if is_write else "R",
                ]
            )
            count += 1
    return _summary(resolved, stats, trace_len=count)


def _summary(fmt: str, stats: ImportStats, trace_len: int) -> ImportSummary:
    return ImportSummary(
        format=fmt,
        lines=stats.lines,
        requests=trace_len,
        skipped=stats.skipped,
        num_disks=len(stats.disks),
        duration_s=stats.last_time,
    )
