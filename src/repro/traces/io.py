"""Trace file persistence (CSV).

Format: one header line, then ``time,disk,block,nblocks,op`` rows with
``op`` in ``{R, W}``. Times are seconds with microsecond precision —
enough for the paper's millisecond-scale workloads while keeping files
diff-friendly.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import TraceError
from repro.traces.record import IORequest, validate_trace

_HEADER = ["time", "disk", "block", "nblocks", "op"]


def save_trace(trace: Sequence[IORequest], path: str | Path) -> None:
    """Write a trace to ``path`` as CSV."""
    validate_trace(trace)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for req in trace:
            writer.writerow(
                [
                    f"{req.time:.6f}",
                    req.disk,
                    req.block,
                    req.nblocks,
                    "W" if req.is_write else "R",
                ]
            )


def load_trace(path: str | Path) -> list[IORequest]:
    """Read a trace written by :func:`save_trace`.

    Raises:
        TraceError: On malformed headers, rows, or time ordering.
    """
    trace: list[IORequest] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _HEADER:
            raise TraceError(f"{path}: bad header {header!r}")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(_HEADER):
                raise TraceError(f"{path}:{line_no}: expected 5 fields")
            try:
                op = row[4].strip().upper()
                if op not in ("R", "W"):
                    raise ValueError(f"bad op {row[4]!r}")
                trace.append(
                    IORequest(
                        time=float(row[0]),
                        disk=int(row[1]),
                        block=int(row[2]),
                        nblocks=int(row[3]),
                        is_write=(op == "W"),
                    )
                )
            except (ValueError, TraceError) as exc:
                raise TraceError(f"{path}:{line_no}: {exc}") from exc
    validate_trace(trace)
    return trace


def iter_trace(path: str | Path) -> Iterable[IORequest]:
    """Stream a trace file without materializing it."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _HEADER:
            raise TraceError(f"{path}: bad header {header!r}")
        for row in reader:
            yield IORequest(
                time=float(row[0]),
                disk=int(row[1]),
                block=int(row[2]),
                nblocks=int(row[3]),
                is_write=(row[4].strip().upper() == "W"),
            )
