"""Trace file persistence (CSV).

Format: one header line, then ``time,disk,block,nblocks,op`` rows with
``op`` in ``{R, W}``. Times are written with full ``repr`` precision so
a save → load round trip reproduces the exact floats — and therefore
the exact :func:`~repro.traces.fingerprint.trace_fingerprint`, which
the campaign result cache uses as its identity key. (An earlier format
quantized times to microseconds, which silently changed fingerprints
across a round trip and defeated that cache.)
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import TraceError
from repro.traces.record import IORequest, validate_trace

_HEADER = ["time", "disk", "block", "nblocks", "op"]


def _check_header(header: list[str] | None, path: str | Path) -> None:
    """Accept the canonical header modulo a BOM and stray whitespace.

    Files that pass through Windows editors or spreadsheet exports grow
    a UTF-8 BOM on the first cell or trailing spaces after commas; both
    are cosmetic, so normalize before comparing instead of rejecting.
    """
    if header is not None:
        cleaned = [field.lstrip("\ufeff").strip() for field in header]
        if cleaned == _HEADER:
            return
    raise TraceError(f"{path}: bad header {header!r}")


def save_trace(trace: Sequence[IORequest], path: str | Path) -> None:
    """Write a trace to ``path`` as CSV (round-trip exact)."""
    validate_trace(trace)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for req in trace:
            writer.writerow(
                [
                    repr(float(req.time)),
                    req.disk,
                    req.block,
                    req.nblocks,
                    "W" if req.is_write else "R",
                ]
            )


def load_trace(path: str | Path) -> list[IORequest]:
    """Read a trace written by :func:`save_trace`.

    Raises:
        TraceError: On malformed headers, rows, or time ordering.
    """
    trace: list[IORequest] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        _check_header(next(reader, None), path)
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(_HEADER):
                raise TraceError(f"{path}:{line_no}: expected 5 fields")
            try:
                op = row[4].strip().upper()
                if op not in ("R", "W"):
                    raise ValueError(f"bad op {row[4]!r}")
                trace.append(
                    IORequest(
                        time=float(row[0]),
                        disk=int(row[1]),
                        block=int(row[2]),
                        nblocks=int(row[3]),
                        is_write=(op == "W"),
                    )
                )
            except (ValueError, TraceError) as exc:
                raise TraceError(f"{path}:{line_no}: {exc}") from exc
    validate_trace(trace)
    return trace


def iter_trace(path: str | Path) -> Iterable[IORequest]:
    """Stream a trace file without materializing it."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        _check_header(next(reader, None), path)
        for row in reader:
            yield IORequest(
                time=float(row[0]),
                disk=int(row[1]),
                block=int(row[2]),
                nblocks=int(row[3]),
                is_write=(row[4].strip().upper() == "W"),
            )
