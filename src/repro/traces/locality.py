"""Spatial and temporal locality models for the trace generators.

Spatial locality follows Table 3: each new address is *sequential*
(next block after the previous access on that disk), *local* (within
``max_local_distance`` blocks), or *random* (uniform over the disk),
with configurable probabilities.

Temporal locality follows the paper's description: reuse distances are
drawn from a Zipf distribution over an LRU stack of previously-used
addresses, so recently-used blocks are re-referenced most often.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class SpatialModel:
    """Sequential / local / random address chooser (Table 3)."""

    def __init__(
        self,
        disk_blocks: int,
        rng: np.random.Generator,
        p_sequential: float = 0.1,
        p_local: float = 0.2,
        max_local_distance: int = 100,
    ) -> None:
        if disk_blocks < 1:
            raise ConfigurationError("disk_blocks must be >= 1")
        p_random = 1.0 - p_sequential - p_local
        if min(p_sequential, p_local, p_random) < -1e-9:
            raise ConfigurationError(
                "sequential/local probabilities must sum to <= 1"
            )
        self.disk_blocks = disk_blocks
        self.p_sequential = p_sequential
        self.p_local = p_local
        self.max_local_distance = max_local_distance
        self._rng = rng
        self._last: dict[int, int] = {}

    def next_block(self, disk: int) -> int:
        """Choose the next block address on ``disk``."""
        last = self._last.get(disk)
        u = self._rng.random()
        if last is None:
            block = int(self._rng.integers(self.disk_blocks))
        elif u < self.p_sequential:
            block = (last + 1) % self.disk_blocks
        elif u < self.p_sequential + self.p_local:
            offset = int(
                self._rng.integers(
                    -self.max_local_distance, self.max_local_distance + 1
                )
            )
            block = min(max(last + offset, 0), self.disk_blocks - 1)
        else:
            block = int(self._rng.integers(self.disk_blocks))
        self._last[disk] = block
        return block


class ZipfStackModel:
    """LRU stack with Zipf-distributed reuse depths.

    ``next_key`` returns a previously-seen key with probability
    ``reuse_probability`` (depth drawn Zipf — shallow depths dominate),
    otherwise ``None``, signalling the caller to mint a fresh address
    (which is then pushed on the stack).

    Internally this is an order-statistics structure, not a linked
    stack: keys occupy an append-only slot array (MRU = highest slot)
    whose occupancy is indexed by a Fenwick tree, so selecting the
    depth-``d`` key and moving it to the MRU position cost O(log n)
    instead of the O(d) walk a linked stack needs. At the default Zipf
    exponent the mean reuse depth is in the thousands, which made the
    walk the bottleneck of million-request trace generation. Dead
    slots left behind by moves are compacted away once the slot array
    fills. Draw order and returned keys are identical to the previous
    OrderedDict walk (an equivalence test pins this).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        reuse_probability: float,
        zipf_a: float = 1.2,
        max_depth: int = 1 << 16,
    ) -> None:
        if not 0.0 <= reuse_probability <= 1.0:
            raise ConfigurationError("reuse_probability must be in [0, 1]")
        if zipf_a <= 1.0:
            raise ConfigurationError("zipf_a must be > 1")
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        self.reuse_probability = reuse_probability
        self.zipf_a = zipf_a
        self.max_depth = max_depth
        self._rng = rng
        self._slots: list = []  # slot -> key; None marks a dead slot
        self._pos: dict = {}  # key -> its live slot
        self._live = 0
        self._tree_size = 64  # power of two, > len(self._slots)
        self._tree = [0] * (self._tree_size + 1)

    def __len__(self) -> int:
        return self._live

    # -- Fenwick primitives ----------------------------------------------

    def _tree_add(self, slot: int, delta: int) -> None:
        i = slot + 1
        tree = self._tree
        size = self._tree_size
        while i <= size:
            tree[i] += delta
            i += i & (-i)

    def _find_kth(self, k: int) -> int:
        """Slot of the ``k``-th live key counted from the LRU end."""
        idx = 0
        bit = self._tree_size  # power of two: covers the whole range
        tree = self._tree
        while bit:
            nxt = idx + bit
            if nxt <= self._tree_size and tree[nxt] < k:
                k -= tree[nxt]
                idx = nxt
            bit >>= 1
        return idx

    def _rebuild(self) -> None:
        """Compact dead slots and resize the tree (amortized O(1))."""
        keys = [k for k in self._slots if k is not None]
        live = len(keys)
        size = 64
        while size < 2 * (live + 1):
            size <<= 1
        self._slots = keys
        self._pos = {k: i for i, k in enumerate(keys)}
        self._tree_size = size
        tree = [0] * (size + 1)
        # Occupancy is 1 for slots [0, live): node i covers the slot
        # range (i - lowbit(i), i], so its count is directly computable.
        for i in range(1, size + 1):
            low = i - (i & (-i))
            tree[i] = min(live, i) - min(live, low)
        self._tree = tree

    def _append(self, key) -> None:
        if len(self._slots) >= self._tree_size:
            self._rebuild()
        slot = len(self._slots)
        self._slots.append(key)
        self._pos[key] = slot
        self._tree_add(slot, 1)

    def _drop(self, slot: int) -> None:
        self._slots[slot] = None
        self._tree_add(slot, -1)

    # -- the stack-model interface ---------------------------------------

    def next_key(self):
        """A reused key (moved to MRU), or ``None`` for "mint new"."""
        if not self._live or self._rng.random() >= self.reuse_probability:
            return None
        depth = int(self._rng.zipf(self.zipf_a))
        if depth > self._live:
            depth = self._live
        # depth 1 = MRU = the k-th live slot from the LRU end
        slot = self._find_kth(self._live - depth + 1)
        key = self._slots[slot]
        if slot != len(self._slots) - 1:  # the last slot is always MRU
            self._drop(slot)
            del self._pos[key]
            self._append(key)
        return key

    def push(self, key) -> None:
        """Record a freshly-minted key as most recently used."""
        slot = self._pos.get(key)
        if slot is not None:
            # the minted address collided with a resident key: just
            # refresh its recency, exactly as the OrderedDict re-insert did
            if slot != len(self._slots) - 1:
                self._drop(slot)
                del self._pos[key]
                self._append(key)
            return
        self._append(key)
        self._live += 1
        if self._live > self.max_depth:
            lru = self._find_kth(1)
            victim = self._slots[lru]
            self._drop(lru)
            del self._pos[victim]
            self._live -= 1


class ZipfPopularity:
    """Static Zipf popularity over a fixed footprint of blocks.

    Rank 1 is most popular; draws are clamped to the footprint size.
    Used for per-disk working sets where the *set* is fixed but access
    frequency is skewed (hot database tables, for instance).
    """

    def __init__(
        self,
        footprint: int,
        rng: np.random.Generator,
        zipf_a: float = 1.2,
        base_block: int = 0,
    ) -> None:
        if footprint < 1:
            raise ConfigurationError("footprint must be >= 1")
        self.footprint = footprint
        self.base_block = base_block
        self.zipf_a = zipf_a
        self._rng = rng
        # A fixed permutation so popular blocks are scattered over the
        # footprint, not clustered at its start.
        self._perm = rng.permutation(footprint)

    def next_block(self) -> int:
        if self.zipf_a <= 1.0:
            rank = int(self._rng.integers(self.footprint))
        else:
            rank = int(self._rng.zipf(self.zipf_a)) - 1
            if rank >= self.footprint:
                rank = int(self._rng.integers(self.footprint))
        return self.base_block + int(self._perm[rank])
