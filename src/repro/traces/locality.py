"""Spatial and temporal locality models for the trace generators.

Spatial locality follows Table 3: each new address is *sequential*
(next block after the previous access on that disk), *local* (within
``max_local_distance`` blocks), or *random* (uniform over the disk),
with configurable probabilities.

Temporal locality follows the paper's description: reuse distances are
drawn from a Zipf distribution over an LRU stack of previously-used
addresses, so recently-used blocks are re-referenced most often.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import ConfigurationError


class SpatialModel:
    """Sequential / local / random address chooser (Table 3)."""

    def __init__(
        self,
        disk_blocks: int,
        rng: np.random.Generator,
        p_sequential: float = 0.1,
        p_local: float = 0.2,
        max_local_distance: int = 100,
    ) -> None:
        if disk_blocks < 1:
            raise ConfigurationError("disk_blocks must be >= 1")
        p_random = 1.0 - p_sequential - p_local
        if min(p_sequential, p_local, p_random) < -1e-9:
            raise ConfigurationError(
                "sequential/local probabilities must sum to <= 1"
            )
        self.disk_blocks = disk_blocks
        self.p_sequential = p_sequential
        self.p_local = p_local
        self.max_local_distance = max_local_distance
        self._rng = rng
        self._last: dict[int, int] = {}

    def next_block(self, disk: int) -> int:
        """Choose the next block address on ``disk``."""
        last = self._last.get(disk)
        u = self._rng.random()
        if last is None:
            block = int(self._rng.integers(self.disk_blocks))
        elif u < self.p_sequential:
            block = (last + 1) % self.disk_blocks
        elif u < self.p_sequential + self.p_local:
            offset = int(
                self._rng.integers(
                    -self.max_local_distance, self.max_local_distance + 1
                )
            )
            block = min(max(last + offset, 0), self.disk_blocks - 1)
        else:
            block = int(self._rng.integers(self.disk_blocks))
        self._last[disk] = block
        return block


class ZipfStackModel:
    """LRU stack with Zipf-distributed reuse depths.

    ``next_key`` returns a previously-seen key with probability
    ``reuse_probability`` (depth drawn Zipf — shallow depths dominate),
    otherwise ``None``, signalling the caller to mint a fresh address
    (which is then pushed on the stack).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        reuse_probability: float,
        zipf_a: float = 1.2,
        max_depth: int = 1 << 16,
    ) -> None:
        if not 0.0 <= reuse_probability <= 1.0:
            raise ConfigurationError("reuse_probability must be in [0, 1]")
        if zipf_a <= 1.0:
            raise ConfigurationError("zipf_a must be > 1")
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        self.reuse_probability = reuse_probability
        self.zipf_a = zipf_a
        self.max_depth = max_depth
        self._rng = rng
        self._stack: OrderedDict = OrderedDict()  # MRU at the end

    def __len__(self) -> int:
        return len(self._stack)

    def next_key(self):
        """A reused key (moved to MRU), or ``None`` for "mint new"."""
        if not self._stack or self._rng.random() >= self.reuse_probability:
            return None
        depth = int(self._rng.zipf(self.zipf_a))
        depth = min(depth, len(self._stack))
        # depth 1 = MRU; walk from the MRU end
        key = next(
            k
            for i, k in enumerate(reversed(self._stack))
            if i == depth - 1
        )
        self._stack.move_to_end(key)
        return key

    def push(self, key) -> None:
        """Record a freshly-minted key as most recently used."""
        self._stack[key] = None
        self._stack.move_to_end(key)
        if len(self._stack) > self.max_depth:
            self._stack.popitem(last=False)


class ZipfPopularity:
    """Static Zipf popularity over a fixed footprint of blocks.

    Rank 1 is most popular; draws are clamped to the footprint size.
    Used for per-disk working sets where the *set* is fixed but access
    frequency is skewed (hot database tables, for instance).
    """

    def __init__(
        self,
        footprint: int,
        rng: np.random.Generator,
        zipf_a: float = 1.2,
        base_block: int = 0,
    ) -> None:
        if footprint < 1:
            raise ConfigurationError("footprint must be >= 1")
        self.footprint = footprint
        self.base_block = base_block
        self.zipf_a = zipf_a
        self._rng = rng
        # A fixed permutation so popular blocks are scattered over the
        # footprint, not clustered at its start.
        self._perm = rng.permutation(footprint)

    def next_block(self) -> int:
        if self.zipf_a <= 1.0:
            rank = int(self._rng.integers(self.footprint))
        else:
            rank = int(self._rng.zipf(self.zipf_a)) - 1
            if rank >= self.footprint:
                rank = int(self._rng.integers(self.footprint))
        return self.base_block + int(self._perm[rank])
