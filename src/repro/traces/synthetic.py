"""The Table 3 parameterized synthetic trace generator.

This is the workload of the paper's write-policy study (Section 6):
requests arrive per an exponential or Pareto process, target one of 20
disks, and mix temporal locality (Zipf reuse stack) with spatial
locality (sequential / local / random, Table 3 probabilities). The
write ratio and mean inter-arrival time are the swept parameters of
Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.arrivals import make_arrivals
from repro.traces.locality import SpatialModel, ZipfStackModel
from repro.traces.record import IORequest
from repro.units import DEFAULT_BLOCK_SIZE, GIB


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Table 3 defaults; override fields per experiment.

    The paper's table prints the hit and write ratios ambiguously in
    the archived copy; ``reuse_probability=0.8`` and ``write_ratio=0.2``
    match the legible digits and the Figure 9 sweeps override them
    anyway.
    """

    num_requests: int = 1_000_000
    num_disks: int = 20
    arrival_process: str = "exponential"  # or "pareto"
    mean_interarrival_s: float = 0.250
    pareto_shape: float = 1.5
    reuse_probability: float = 0.8
    write_ratio: float = 0.2
    disk_size_bytes: int = 18 * GIB
    block_size: int = DEFAULT_BLOCK_SIZE
    p_sequential: float = 0.1
    p_local: float = 0.2
    max_local_distance: int = 100
    zipf_a: float = 1.2
    stack_depth: int = 1 << 16
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ConfigurationError("num_requests must be >= 1")
        if self.num_disks < 1:
            raise ConfigurationError("num_disks must be >= 1")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError("write_ratio must be in [0, 1]")

    @property
    def disk_blocks(self) -> int:
        return self.disk_size_bytes // self.block_size


def generate_synthetic_trace(
    config: SyntheticTraceConfig = SyntheticTraceConfig(),
) -> list[IORequest]:
    """Generate one Table 3 trace (deterministic given ``config.seed``)."""
    rng = np.random.default_rng(config.seed)
    arrivals = make_arrivals(
        config.arrival_process,
        config.mean_interarrival_s,
        rng,
        shape=config.pareto_shape,
    )
    spatial = SpatialModel(
        disk_blocks=config.disk_blocks,
        rng=rng,
        p_sequential=config.p_sequential,
        p_local=config.p_local,
        max_local_distance=config.max_local_distance,
    )
    stack = ZipfStackModel(
        rng=rng,
        reuse_probability=config.reuse_probability,
        zipf_a=config.zipf_a,
        max_depth=config.stack_depth,
    )
    trace: list[IORequest] = []
    time = 0.0
    for _ in range(config.num_requests):
        time += arrivals.next_gap()
        key = stack.next_key()
        if key is None:
            disk = int(rng.integers(config.num_disks))
            block = spatial.next_block(disk)
            key = (disk, block)
            stack.push(key)
        trace.append(
            IORequest(
                time=time,
                disk=key[0],
                block=key[1],
                is_write=bool(rng.random() < config.write_ratio),
            )
        )
    return trace
