"""The Table 3 parameterized synthetic trace generator.

This is the workload of the paper's write-policy study (Section 6):
requests arrive per an exponential or Pareto process, target one of 20
disks, and mix temporal locality (Zipf reuse stack) with spatial
locality (sequential / local / random, Table 3 probabilities). The
write ratio and mean inter-arrival time are the swept parameters of
Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.arrivals import make_arrivals
from repro.traces.columnar import ColumnarTrace
from repro.traces.locality import SpatialModel, ZipfStackModel
from repro.traces.record import IORequest
from repro.traces.streaming import TraceRow, build_columnar
from repro.units import DEFAULT_BLOCK_SIZE, GIB


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Table 3 defaults; override fields per experiment.

    The paper's table prints the hit and write ratios ambiguously in
    the archived copy; ``reuse_probability=0.8`` and ``write_ratio=0.2``
    match the legible digits and the Figure 9 sweeps override them
    anyway.
    """

    num_requests: int = 1_000_000
    num_disks: int = 20
    arrival_process: str = "exponential"  # or "pareto"
    mean_interarrival_s: float = 0.250
    pareto_shape: float = 1.5
    reuse_probability: float = 0.8
    write_ratio: float = 0.2
    disk_size_bytes: int = 18 * GIB
    block_size: int = DEFAULT_BLOCK_SIZE
    p_sequential: float = 0.1
    p_local: float = 0.2
    max_local_distance: int = 100
    zipf_a: float = 1.2
    stack_depth: int = 1 << 16
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ConfigurationError("num_requests must be >= 1")
        if self.num_disks < 1:
            raise ConfigurationError("num_disks must be >= 1")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError("write_ratio must be in [0, 1]")

    @property
    def disk_blocks(self) -> int:
        return self.disk_size_bytes // self.block_size


def iter_synthetic_rows(
    config: SyntheticTraceConfig = SyntheticTraceConfig(),
) -> Iterator[TraceRow]:
    """The generation loop as a streaming row source (DESIGN §14).

    Draw order is part of the trace's identity (fixtures pin traces by
    seed), so both public generators must funnel through this one loop.
    """
    rng = np.random.default_rng(config.seed)
    arrivals = make_arrivals(
        config.arrival_process,
        config.mean_interarrival_s,
        rng,
        shape=config.pareto_shape,
    )
    spatial = SpatialModel(
        disk_blocks=config.disk_blocks,
        rng=rng,
        p_sequential=config.p_sequential,
        p_local=config.p_local,
        max_local_distance=config.max_local_distance,
    )
    stack = ZipfStackModel(
        rng=rng,
        reuse_probability=config.reuse_probability,
        zipf_a=config.zipf_a,
        max_depth=config.stack_depth,
    )
    next_gap = arrivals.next_gap
    next_reuse = stack.next_key
    push = stack.push
    next_block = spatial.next_block
    rng_random = rng.random
    rng_integers = rng.integers
    num_disks = config.num_disks
    write_ratio = config.write_ratio
    time = 0.0
    for _ in range(config.num_requests):
        time += next_gap()
        key = next_reuse()
        if key is None:
            disk = int(rng_integers(num_disks))
            key = (disk, next_block(disk))
            push(key)
        yield (time, key[0], key[1], 1, bool(rng_random() < write_ratio))


def generate_synthetic_trace(
    config: SyntheticTraceConfig = SyntheticTraceConfig(),
) -> list[IORequest]:
    """Generate one Table 3 trace (deterministic given ``config.seed``)."""
    return [
        IORequest(time=t, disk=d, block=b, is_write=w)
        for t, d, b, _, w in iter_synthetic_rows(config)
    ]


def generate_synthetic_trace_columnar(
    config: SyntheticTraceConfig = SyntheticTraceConfig(),
) -> ColumnarTrace:
    """:func:`generate_synthetic_trace` straight into columns.

    Same seed, same draws, same requests — streamed through the chunked
    builder without materializing an :class:`IORequest` (or a boxed
    Python scalar) per row. This is the generator the benchmark harness
    and campaigns use for large traces.
    """
    return build_columnar(iter_synthetic_rows(config))
