"""Trace transformations.

Utilities for slicing and reshaping traces during experimentation:
projections (read-only, per-disk), time scaling (stretch or compress
inter-arrival gaps), windowing, and chronological merging. All
functions are pure — they return new request lists and never mutate
their inputs.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Iterable, Sequence

from repro.errors import TraceError
from repro.traces.record import IORequest, validate_trace


def read_only(trace: Sequence[IORequest]) -> list[IORequest]:
    """Project every request to a read (keeps timing and addresses).

    Used to isolate replacement-policy effects from write-policy
    effects — e.g. the EXPERIMENTS.md analysis showing OPG == Belady on
    Cello96 once write-back traffic is removed.
    """
    return [
        dataclasses.replace(r, is_write=False) if r.is_write else r
        for r in trace
    ]


def reads_only(trace: Sequence[IORequest]) -> list[IORequest]:
    """Drop write requests entirely (the read sub-trace)."""
    return [r for r in trace if not r.is_write]


def filter_disks(
    trace: Sequence[IORequest], disks: Iterable[int]
) -> list[IORequest]:
    """Keep only requests targeting the given disks."""
    wanted = set(disks)
    return [r for r in trace if r.disk in wanted]


def time_window(
    trace: Sequence[IORequest], start: float, end: float
) -> list[IORequest]:
    """Requests with ``start <= time < end``, re-based to t=0."""
    if end <= start:
        raise TraceError(f"empty window [{start}, {end})")
    return [
        dataclasses.replace(r, time=r.time - start)
        for r in trace
        if start <= r.time < end
    ]


def scale_time(trace: Sequence[IORequest], factor: float) -> list[IORequest]:
    """Stretch (>1) or compress (<1) all inter-arrival gaps.

    Compressing a trace is the standard way to emulate a higher-load
    version of the same workload without changing its access pattern.
    """
    if factor <= 0:
        raise TraceError(f"scale factor must be > 0, got {factor}")
    return [dataclasses.replace(r, time=r.time * factor) for r in trace]


def merge(*traces: Sequence[IORequest]) -> list[IORequest]:
    """Chronologically merge multiple (individually ordered) traces."""
    for trace in traces:
        validate_trace(trace)
    merged = list(
        heapq.merge(*traces, key=lambda r: r.time)
    )
    return merged


def remap_disks(
    trace: Sequence[IORequest], mapping: dict[int, int]
) -> list[IORequest]:
    """Renumber disks (e.g. to consolidate a filtered trace).

    Raises:
        TraceError: If a request's disk has no mapping.
    """
    out = []
    for r in trace:
        if r.disk not in mapping:
            raise TraceError(f"no mapping for disk {r.disk}")
        out.append(dataclasses.replace(r, disk=mapping[r.disk]))
    return out
