"""Streaming construction of columnar traces (chunked appends).

Every generator and importer in :mod:`repro.traces` ultimately produces
a :class:`~repro.traces.columnar.ColumnarTrace`. Building one through a
``list[IORequest]`` costs an object, five boxed fields, and a list slot
per request — at 10M requests that is gigabytes of transient heap for a
trace whose columnar form is ~330 MB. :class:`TraceBuilder` removes the
boxed intermediate: rows are appended straight into fixed-size column
chunks (numpy arrays when numpy is importable, :mod:`array` arrays
otherwise) and concatenated once at :meth:`TraceBuilder.build`.

The streaming generator protocol (DESIGN §14) is deliberately tiny: a
workload family is a function yielding ``(time, disk, block, nblocks,
is_write)`` tuples in non-decreasing time order, and
:func:`build_columnar` turns any such stream into a trace. Peak memory
is the final columns plus one in-flight chunk — no per-request Python
objects survive past the yield.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Tuple

from repro.errors import TraceError
from repro.traces.columnar import ColumnarTrace

try:  # numpy is the preferred backend, but never a hard requirement
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: One streamed trace record: ``(time, disk, block, nblocks, is_write)``.
TraceRow = Tuple[float, int, int, int, bool]

#: Rows per column chunk. Large enough that the per-chunk bookkeeping
#: vanishes, small enough that the in-flight chunk is a rounding error
#: next to the finished columns (5 columns x 8 B x 64 Ki = 2.5 MiB).
CHUNK_ROWS = 1 << 16

#: (attribute order, numpy dtype, array typecode) — must stay aligned
#: with ``repro.traces.columnar._COLUMNS``.
_DTYPES = (("<f8", "d"), ("<i8", "q"), ("<i8", "q"), ("<i8", "q"), ("|b1", "b"))


class TraceBuilder:
    """Accumulate trace rows into column chunks; finalize with :meth:`build`.

    Appends validate the trace invariants as they stream — non-negative
    fields and non-decreasing times — so a malformed source fails at the
    offending row, not after an expensive full pass.
    """

    __slots__ = ("_chunks", "_current", "_fill", "_count", "_last_time")

    def __init__(self) -> None:
        self._chunks: list[tuple] = []  # full chunks, oldest first
        self._current = None  # in-flight chunk (numpy backend only)
        self._fill = 0
        self._count = 0
        self._last_time = 0.0
        if _np is None:
            # array.array stores scalars unboxed and grows amortized
            # O(1); it already *is* a chunked append buffer.
            self._current = tuple(array(code) for _, code in _DTYPES)

    def __len__(self) -> int:
        return self._count

    def append(
        self,
        time: float,
        disk: int,
        block: int,
        nblocks: int = 1,
        is_write: bool = False,
    ) -> None:
        """Append one record (validated, O(1) amortized)."""
        if time < self._last_time:
            raise TraceError(
                f"trace not time-ordered at row {self._count}: "
                f"{time} < {self._last_time}"
            )
        if time < 0 or disk < 0 or block < 0 or nblocks < 1:
            raise TraceError(
                f"bad record at row {self._count}: "
                f"({time}, {disk}, {block}, {nblocks})"
            )
        self._last_time = time
        if _np is None:
            columns = self._current
            columns[0].append(time)
            columns[1].append(disk)
            columns[2].append(block)
            columns[3].append(nblocks)
            columns[4].append(1 if is_write else 0)
            self._count += 1
            return
        if self._current is None:
            self._current = tuple(
                _np.empty(CHUNK_ROWS, dtype=dtype) for dtype, _ in _DTYPES
            )
            self._fill = 0
        fill = self._fill
        current = self._current
        current[0][fill] = time
        current[1][fill] = disk
        current[2][fill] = block
        current[3][fill] = nblocks
        current[4][fill] = is_write
        self._fill = fill + 1
        self._count += 1
        if self._fill == CHUNK_ROWS:
            self._chunks.append(current)
            self._current = None

    def extend(self, rows: Iterable[TraceRow]) -> "TraceBuilder":
        """Append a stream of ``(time, disk, block, nblocks, is_write)``."""
        append = self.append
        for time, disk, block, nblocks, is_write in rows:
            append(time, disk, block, nblocks, is_write)
        return self

    def build(self) -> ColumnarTrace:
        """Concatenate the chunks into a :class:`ColumnarTrace`.

        The builder is drained: its chunks are released as they are
        copied, so peak memory during the copy is the finished columns
        plus the largest single chunk.
        """
        if _np is None:
            columns = self._current
            self._current = tuple(array(code) for _, code in _DTYPES)
            self._count = 0
            self._last_time = 0.0
            return ColumnarTrace(*columns)
        parts = list(self._chunks)
        if self._current is not None:
            parts.append(tuple(c[: self._fill] for c in self._current))
        self._chunks = []
        self._current = None
        self._fill = 0
        self._count = 0
        self._last_time = 0.0
        columns = []
        for index, (dtype, _) in enumerate(_DTYPES):
            if parts:
                columns.append(
                    _np.concatenate([part[index] for part in parts])
                )
            else:
                columns.append(_np.empty(0, dtype=dtype))
        # Release each consumed chunk column promptly.
        del parts
        return ColumnarTrace(*columns)


def build_columnar(rows: Iterable[TraceRow]) -> ColumnarTrace:
    """Stream ``rows`` through a :class:`TraceBuilder` into a trace."""
    return TraceBuilder().extend(rows).build()


def iter_requests_as_rows(trace) -> Iterator[TraceRow]:
    """Adapt a request sequence to the streaming row protocol."""
    for req in trace:
        yield (req.time, req.disk, req.block, req.nblocks, req.is_write)
