"""Columnar (struct-of-arrays) trace representation.

The object-per-request trace (``list[IORequest]``) is convenient but
expensive at scale: a million requests is a million frozen dataclass
instances, and every simulation pass pays an attribute lookup per field
per request. :class:`ColumnarTrace` stores the same five fields as five
parallel columns — ``times``, ``disks``, ``blocks``, ``nblocks``,
``is_write`` — backed by ``numpy`` arrays when numpy is importable and
by :mod:`array` arrays otherwise.

The simulation engine (:class:`repro.sim.engine.StorageSimulator`)
detects a :class:`ColumnarTrace` and drives its hot loop straight off
the columns, skipping :class:`~repro.traces.record.IORequest`
construction entirely. Everything else keeps working unchanged: a
:class:`ColumnarTrace` quacks like a sequence of requests
(``len``, indexing, iteration, slicing), so fingerprinting, statistics,
and the legacy engine path all accept one.

Columns can also be exported into a :mod:`multiprocessing.shared_memory`
segment (:meth:`ColumnarTrace.share`) so campaign workers attach
zero-copy instead of each receiving a pickled copy of the trace — see
:mod:`repro.campaign.executor`.
"""

from __future__ import annotations

import csv
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import TraceError
from repro.traces.record import IORequest

try:  # numpy is the preferred backend, but never a hard requirement
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: (field name, numpy dtype, array typecode) for each column, in order.
_COLUMNS = (
    ("times", "<f8", "d"),
    ("disks", "<i8", "q"),
    ("blocks", "<i8", "q"),
    ("nblocks", "<i8", "q"),
    ("is_write", "|b1", "b"),
)

_CSV_HEADER = ["time", "disk", "block", "nblocks", "op"]


@dataclass(frozen=True)
class SharedTraceDescriptor:
    """Picklable handle to a trace living in a shared-memory segment.

    Produced by :meth:`ColumnarTrace.share`; consumed by
    :meth:`ColumnarTrace.from_shared` in another process. The segment
    packs the five columns back to back at 8-byte-aligned offsets.
    """

    shm_name: str
    length: int
    #: (field, dtype/typecode, byte offset, byte length) per column.
    layout: tuple[tuple[str, str, int, int], ...]


class ColumnarTrace:
    """A trace as five parallel columns.

    Args:
        times / disks / blocks / nblocks / is_write: Equal-length
            columns. Accepted as numpy arrays, :mod:`array` arrays, or
            plain sequences (converted to the active backend).

    Use the classmethods for the common constructions:
    :meth:`from_requests`, :meth:`from_csv`, :meth:`from_shared`.
    """

    __slots__ = ("times", "disks", "blocks", "nblocks", "is_write", "_shm")

    def __init__(self, times, disks, blocks, nblocks, is_write) -> None:
        columns = (times, disks, blocks, nblocks, is_write)
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise TraceError(
                f"columns must have equal lengths, got {sorted(lengths)}"
            )
        for (name, dtype, typecode), value in zip(_COLUMNS, columns):
            setattr(self, name, _as_column(value, dtype, typecode))
        self._shm = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_requests(cls, trace: Iterable[IORequest]) -> "ColumnarTrace":
        """Convert a sequence of :class:`IORequest` (already validated)."""
        times: list[float] = []
        disks: list[int] = []
        blocks: list[int] = []
        nblocks: list[int] = []
        is_write: list[bool] = []
        for req in trace:
            times.append(req.time)
            disks.append(req.disk)
            blocks.append(req.block)
            nblocks.append(req.nblocks)
            is_write.append(req.is_write)
        return cls(times, disks, blocks, nblocks, is_write)

    @classmethod
    def from_csv(cls, path: str | Path) -> "ColumnarTrace":
        """Load a trace CSV (``repro generate`` format) into columns.

        Builds the columns directly — no intermediate
        :class:`IORequest` objects — and applies the same validation as
        :func:`repro.traces.io.load_trace`.
        """
        times: list[float] = []
        disks: list[int] = []
        blocks: list[int] = []
        nblocks: list[int] = []
        is_write: list[bool] = []
        previous = -1.0
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            cleaned = None
            if header is not None:
                # Tolerate a UTF-8 BOM / stray whitespace, matching
                # repro.traces.io._check_header.
                cleaned = [field.lstrip("\ufeff").strip() for field in header]
            if cleaned != _CSV_HEADER:
                raise TraceError(f"{path}: bad header {header!r}")
            for line_no, row in enumerate(reader, start=2):
                if len(row) != 5:
                    raise TraceError(f"{path}:{line_no}: expected 5 fields")
                try:
                    time = float(row[0])
                    disk = int(row[1])
                    block = int(row[2])
                    count = int(row[3])
                    op = row[4].strip().upper()
                    if op not in ("R", "W"):
                        raise ValueError(f"bad op {row[4]!r}")
                    if time < 0 or disk < 0 or block < 0 or count < 1:
                        raise ValueError(
                            f"bad record ({time}, {disk}, {block}, {count})"
                        )
                except ValueError as exc:
                    raise TraceError(f"{path}:{line_no}: {exc}") from exc
                if time < previous:
                    raise TraceError(
                        f"{path}:{line_no}: trace not time-ordered "
                        f"({time} < {previous})"
                    )
                previous = time
                times.append(time)
                disks.append(disk)
                blocks.append(block)
                nblocks.append(count)
                is_write.append(op == "W")
        return cls(times, disks, blocks, nblocks, is_write)

    # -- sequence protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ColumnarTrace(
                self.times[index],
                self.disks[index],
                self.blocks[index],
                self.nblocks[index],
                self.is_write[index],
            )
        return IORequest(
            time=float(self.times[index]),
            disk=int(self.disks[index]),
            block=int(self.blocks[index]),
            nblocks=int(self.nblocks[index]),
            is_write=bool(self.is_write[index]),
        )

    def __iter__(self) -> Iterator[IORequest]:
        return self.iter_requests()

    def iter_requests(self) -> Iterator[IORequest]:
        """Yield each record as an :class:`IORequest` (adapter path)."""
        for time, disk, block, count, write in zip(*self.as_lists()):
            yield IORequest(
                time=time, disk=disk, block=block,
                nblocks=count, is_write=write,
            )

    def iter_accesses(self) -> Iterator[tuple[float, tuple[int, int]]]:
        """Stream the per-block ``(time, key)`` access sequence.

        This is the exact ``on_access`` stream the cache will issue —
        what offline policies are prepared with — produced without
        materializing request objects or the flattened list.
        """
        for time, disk, block, count, _ in zip(*self.as_lists()):
            if count == 1:
                yield (time, (disk, block))
            else:
                for i in range(count):
                    yield (time, (disk, block + i))

    def as_lists(self) -> tuple[list, list, list, list, list]:
        """The five columns as plain Python lists (fastest to iterate).

        Scalars come back as native ``float``/``int``/``bool`` — numpy
        scalar types never leak into the simulation.
        """
        return (
            _to_list(self.times, float),
            _to_list(self.disks, int),
            _to_list(self.blocks, int),
            _to_list(self.nblocks, int),
            _to_list(self.is_write, bool),
        )

    def to_requests(self) -> list[IORequest]:
        """Materialize the legacy object-per-request representation."""
        return list(self.iter_requests())

    def validate(self) -> None:
        """Check time-ordering; raises :class:`TraceError` on violations.

        Vectorized under numpy; mirrors
        :func:`repro.traces.record.validate_trace`.
        """
        index = self.first_disorder()
        if index is not None:
            raise TraceError(
                f"trace not time-ordered at index {index}: "
                f"{float(self.times[index])} < {float(self.times[index - 1])}"
            )

    def first_disorder(self) -> int | None:
        """Index of the first out-of-order record, or ``None``."""
        times = self.times
        if len(times) < 2:
            return None
        if _np is not None and isinstance(times, _np.ndarray):
            bad = _np.flatnonzero(times[1:] < times[:-1])
            return int(bad[0]) + 1 if bad.size else None
        previous = times[0]
        for i in range(1, len(times)):
            if times[i] < previous:
                return i
            previous = times[i]
        return None

    # -- shared memory ----------------------------------------------------

    def share(self):
        """Copy the columns into a shared-memory segment.

        Returns:
            ``(descriptor, shm)`` — a picklable
            :class:`SharedTraceDescriptor` for other processes and the
            owning :class:`multiprocessing.shared_memory.SharedMemory`.
            The caller owns the segment: keep ``shm`` alive while
            workers attach, then ``shm.close(); shm.unlink()``.
        """
        from multiprocessing import shared_memory

        layout = []
        offset = 0
        buffers = []
        for name, dtype, typecode in _COLUMNS:
            raw = getattr(self, name).tobytes()
            layout.append((name, dtype, offset, len(raw)))
            buffers.append(raw)
            offset += (len(raw) + 7) & ~7  # keep every column 8-aligned
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        for (name, dtype, start, nbytes), raw in zip(layout, buffers):
            shm.buf[start:start + nbytes] = raw
        descriptor = SharedTraceDescriptor(
            shm_name=shm.name, length=len(self), layout=tuple(layout)
        )
        return descriptor, shm

    @classmethod
    def from_shared(cls, descriptor: SharedTraceDescriptor) -> "ColumnarTrace":
        """Attach to a segment created by :meth:`share` (zero-copy).

        Under numpy the columns are views straight onto the shared
        buffer; the fallback backend copies into local arrays. The
        returned trace holds the attachment open — call :meth:`close`
        when done (the segment's creator does the ``unlink``).
        """
        from multiprocessing import shared_memory

        # Attaching registers the segment with the resource tracker on
        # POSIX (CPython < 3.13, no ``track=False`` yet), which would
        # let an attacher's tracker unlink a segment it does not own —
        # and processes sharing one tracker would double-unregister.
        # The creator is the sole owner, so suppress the registration
        # for the duration of the attach.
        try:  # pragma: no cover - depends on interpreter internals
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register

            def register(name, rtype):  # noqa: ANN001
                if rtype == "shared_memory":
                    return
                original_register(name, rtype)

            resource_tracker.register = register
        except Exception:
            resource_tracker = None
            original_register = None
        try:
            shm = shared_memory.SharedMemory(name=descriptor.shm_name)
        finally:
            if original_register is not None:
                resource_tracker.register = original_register
        columns = {}
        copy = _np is None
        for name, dtype, offset, nbytes in descriptor.layout:
            if _np is not None:
                count = descriptor.length
                columns[name] = _np.frombuffer(
                    shm.buf, dtype=dtype, count=count, offset=offset
                )
            else:
                typecode = {d: t for _, d, t in _COLUMNS}[dtype]
                local = array(typecode)
                local.frombytes(bytes(shm.buf[offset:offset + nbytes]))
                columns[name] = local
        trace = cls(**columns)
        if copy:
            shm.close()
        else:
            trace._shm = shm
        return trace

    def close(self) -> None:
        """Release a shared-memory attachment (no-op otherwise)."""
        if self._shm is not None:
            # Views must drop their buffer references before close().
            for name, _, _ in _COLUMNS:
                setattr(self, name, getattr(self, name).copy())
            self._shm.close()
            self._shm = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = "numpy" if (
            _np is not None and isinstance(self.times, _np.ndarray)
        ) else "array"
        return f"ColumnarTrace(n={len(self)}, backend={backend})"


def _as_column(value, dtype: str, typecode: str):
    """Coerce ``value`` into the active backend's column type."""
    if _np is not None:
        if isinstance(value, _np.ndarray) and value.dtype == _np.dtype(dtype):
            return value
        return _np.asarray(value, dtype=dtype)
    if isinstance(value, array) and value.typecode == typecode:
        return value
    if typecode == "b":
        return array(typecode, [1 if v else 0 for v in value])
    return array(typecode, value)


def _to_list(column, cast) -> list:
    if _np is not None and isinstance(column, _np.ndarray):
        return column.tolist()  # native Python scalars, C-speed
    if cast is bool:
        return [bool(v) for v in column]
    return list(column)


def as_columnar(trace: Sequence[IORequest] | ColumnarTrace) -> ColumnarTrace:
    """Coerce any trace into columnar form (no-op if already columnar)."""
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_requests(trace)
