"""Inter-arrival time processes (Table 3: Exponential and Pareto).

The paper's synthetic traces draw inter-arrival times from either an
exponential distribution (Poisson traffic, no burstiness) or a Pareto
distribution with finite mean and infinite variance (bursty traffic).
Both processes here are seeded and generate one inter-arrival gap per
call; generators compose them per-disk or per-trace.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError


class ArrivalProcess(ABC):
    """A stream of positive inter-arrival gaps (seconds)."""

    @abstractmethod
    def next_gap(self) -> float:
        """Draw the next inter-arrival time."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """The process's theoretical mean gap."""


class ExponentialArrivals(ArrivalProcess):
    """Poisson arrivals: exponentially distributed gaps."""

    def __init__(self, mean_s: float, rng: np.random.Generator) -> None:
        if mean_s <= 0:
            raise ConfigurationError(f"mean_s must be > 0, got {mean_s}")
        self._mean = mean_s
        self._rng = rng

    def next_gap(self) -> float:
        return float(self._rng.exponential(self._mean))

    @property
    def mean(self) -> float:
        return self._mean


class ParetoArrivals(ArrivalProcess):
    """Bursty arrivals: Pareto-distributed gaps.

    With shape ``alpha`` in (1, 2) the distribution has a finite mean
    and infinite variance — the regime the paper uses. The scale is
    derived from the requested mean: ``mean = scale * alpha / (alpha-1)``.
    """

    def __init__(
        self, mean_s: float, rng: np.random.Generator, shape: float = 1.5
    ) -> None:
        if mean_s <= 0:
            raise ConfigurationError(f"mean_s must be > 0, got {mean_s}")
        if not 1.0 < shape <= 2.0:
            raise ConfigurationError(
                f"shape must lie in (1, 2] for finite mean / infinite "
                f"variance, got {shape}"
            )
        self.shape = shape
        self.scale = mean_s * (shape - 1.0) / shape
        self._mean = mean_s
        self._rng = rng

    def next_gap(self) -> float:
        # numpy's pareto() is the Lomax form; (1 + X) * scale is the
        # classical Pareto with minimum = scale.
        return float((1.0 + self._rng.pareto(self.shape)) * self.scale)

    @property
    def mean(self) -> float:
        return self._mean


def make_arrivals(
    kind: str, mean_s: float, rng: np.random.Generator, shape: float = 1.5
) -> ArrivalProcess:
    """Factory: ``"exponential"`` or ``"pareto"``."""
    if kind == "exponential":
        return ExponentialArrivals(mean_s, rng)
    if kind == "pareto":
        return ParetoArrivals(mean_s, rng, shape=shape)
    raise ConfigurationError(f"unknown arrival process {kind!r}")
