"""I/O trace records.

A trace is a time-ordered sequence of :class:`IORequest`. Each request
names its target disk, the first block on that disk, a block count, and
whether it is a write — the same fields the paper's traces carry (the
OLTP trace is block-level I/O from SQL Server to the storage system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cache.block import BlockKey
from repro.errors import TraceError


@dataclass(frozen=True, slots=True)
class IORequest:
    """One I/O request as seen by the storage cache."""

    time: float
    disk: int
    block: int
    nblocks: int = 1
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TraceError(f"request time must be >= 0, got {self.time}")
        if self.disk < 0:
            raise TraceError(f"disk id must be >= 0, got {self.disk}")
        if self.block < 0:
            raise TraceError(f"block must be >= 0, got {self.block}")
        if self.nblocks < 1:
            raise TraceError(f"nblocks must be >= 1, got {self.nblocks}")

    def block_keys(self) -> list[BlockKey]:
        """The cache-level block keys this request touches."""
        return [(self.disk, self.block + i) for i in range(self.nblocks)]


def validate_trace(trace: Sequence[IORequest]) -> None:
    """Check time-ordering; raises :class:`TraceError` on violations."""
    previous = -1.0
    for i, req in enumerate(trace):
        if req.time < previous:
            raise TraceError(
                f"trace not time-ordered at index {i}: {req.time} < {previous}"
            )
        previous = req.time


def expand_accesses(
    trace: Iterable[IORequest],
) -> list[tuple[float, BlockKey]]:
    """Flatten a trace into per-block ``(time, key)`` accesses.

    This is exactly the ``on_access`` stream the cache will issue, so
    it is what offline policies must be prepared with.
    """
    accesses: list[tuple[float, BlockKey]] = []
    for req in trace:
        for key in req.block_keys():
            accesses.append((req.time, key))
    return accesses
