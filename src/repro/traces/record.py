"""I/O trace records.

A trace is a time-ordered sequence of :class:`IORequest`. Each request
names its target disk, the first block on that disk, a block count, and
whether it is a write — the same fields the paper's traces carry (the
OLTP trace is block-level I/O from SQL Server to the storage system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cache.block import BlockKey
from repro.errors import TraceError


@dataclass(frozen=True, slots=True)
class IORequest:
    """One I/O request as seen by the storage cache."""

    time: float
    disk: int
    block: int
    nblocks: int = 1
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TraceError(f"request time must be >= 0, got {self.time}")
        if self.disk < 0:
            raise TraceError(f"disk id must be >= 0, got {self.disk}")
        if self.block < 0:
            raise TraceError(f"block must be >= 0, got {self.block}")
        if self.nblocks < 1:
            raise TraceError(f"nblocks must be >= 1, got {self.nblocks}")

    def block_keys(self) -> list[BlockKey]:
        """The cache-level block keys this request touches."""
        return [(self.disk, self.block + i) for i in range(self.nblocks)]


def validate_trace(trace: Sequence[IORequest]) -> None:
    """Check time-ordering; raises :class:`TraceError` on violations."""
    previous = -1.0
    for i, req in enumerate(trace):
        if req.time < previous:
            raise TraceError(
                f"trace not time-ordered at index {i}: {req.time} < {previous}"
            )
        previous = req.time


def expand_accesses(
    trace: Iterable[IORequest],
) -> list[tuple[float, BlockKey]]:
    """Flatten a trace into per-block ``(time, key)`` accesses.

    This is exactly the ``on_access`` stream the cache will issue, so
    it is what offline policies must be prepared with. Prefer
    :func:`iter_accesses` when the consumer streams (it avoids
    materializing the flattened list).
    """
    return list(iter_accesses(trace))


def iter_accesses(
    trace: Iterable[IORequest],
) -> Iterable[tuple[float, BlockKey]]:
    """Stream the per-block ``(time, key)`` accesses of a trace.

    Same sequence as :func:`expand_accesses` without building the list —
    offline policies consume this directly, halving their peak memory.
    """
    for req in trace:
        time = req.time
        disk = req.disk
        block = req.block
        if req.nblocks == 1:
            yield (time, (disk, block))
        else:
            for i in range(req.nblocks):
                yield (time, (disk, block + i))
