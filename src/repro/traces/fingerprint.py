"""Cheap deterministic trace fingerprints.

The campaign result store (:mod:`repro.campaign.store`) needs a stable
identity for a workload so cached simulation results are only reused
for the *same* trace. Hashing every field of every record through a
cryptographic hash would dominate small campaigns, so the fingerprint
combines two layers:

* **whole-trace aggregates** computed with plain integer arithmetic in
  one O(n) pass (request count, write count, block volume, time span,
  and order-sensitive running sums of the record fields), and
* **a bounded sample** of records (first, last, and up to
  :data:`SAMPLE_LIMIT` evenly strided interior records) hashed exactly.

Two traces that differ in any record almost surely differ in the
aggregates (the running sums are position-weighted, so reorderings are
caught too), and any difference near the sampled positions is caught
exactly. The digest is a hex SHA-256, stable across processes and
Python versions.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.traces.record import IORequest

#: Maximum number of interior records hashed exactly.
SAMPLE_LIMIT = 64

_MASK = (1 << 64) - 1


def _record_token(req: IORequest) -> bytes:
    """Canonical byte form of one record (microsecond-stable time)."""
    op = "W" if req.is_write else "R"
    return f"{req.time:.6f},{req.disk},{req.block},{req.nblocks},{op}".encode()


def trace_fingerprint(trace: Sequence[IORequest]) -> str:
    """Hex SHA-256 identity of a trace, cheap enough to always compute.

    The empty trace has a well-defined fingerprint. Fingerprints are
    order-sensitive: swapping two equal-time records changes the value.
    """
    digest = hashlib.sha256()
    n = len(trace)
    writes = 0
    volume = 0
    block_sum = 0
    disk_sum = 0
    time_sum_us = 0
    for position, req in enumerate(trace, start=1):
        weight = position & _MASK
        writes += req.is_write
        volume += req.nblocks
        block_sum = (block_sum + weight * (req.block + 1)) & _MASK
        disk_sum = (disk_sum + weight * (req.disk + 1)) & _MASK
        time_sum_us = (time_sum_us + int(req.time * 1e6)) & _MASK
    span = f"{trace[-1].time - trace[0].time:.6f}" if n else "0"
    digest.update(
        f"n={n};w={writes};v={volume};b={block_sum};"
        f"d={disk_sum};t={time_sum_us};s={span}".encode()
    )
    if n:
        stride = max(1, n // SAMPLE_LIMIT)
        for index in range(0, n, stride):
            digest.update(b"|")
            digest.update(_record_token(trace[index]))
        digest.update(b"|")
        digest.update(_record_token(trace[-1]))
    return digest.hexdigest()
