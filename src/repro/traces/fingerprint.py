"""Cheap deterministic trace fingerprints.

The campaign result store (:mod:`repro.campaign.store`) needs a stable
identity for a workload so cached simulation results are only reused
for the *same* trace. Hashing every field of every record through a
cryptographic hash would dominate small campaigns, so the fingerprint
combines two layers:

* **whole-trace aggregates** computed with plain integer arithmetic in
  one O(n) pass (request count, write count, block volume, time span,
  and order-sensitive running sums of the record fields), and
* **a bounded sample** of records (first, last, and up to
  :data:`SAMPLE_LIMIT` evenly strided interior records) hashed exactly.

Two traces that differ in any record almost surely differ in the
aggregates (the running sums are position-weighted, so reorderings are
caught too), and any difference near the sampled positions is caught
exactly. The digest is a hex SHA-256, stable across processes and
Python versions.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.traces.columnar import ColumnarTrace
from repro.traces.record import IORequest
from repro.units import US_PER_S

#: Maximum number of interior records hashed exactly.
SAMPLE_LIMIT = 64

_MASK = (1 << 64) - 1


def _record_token(req: IORequest) -> bytes:
    """Canonical byte form of one record (microsecond-stable time)."""
    op = "W" if req.is_write else "R"
    return f"{req.time:.6f},{req.disk},{req.block},{req.nblocks},{op}".encode()


def _columnar_aggregates(trace: ColumnarTrace):
    """Vectorized aggregate pass for numpy-backed columnar traces.

    uint64 arithmetic wraps modulo 2**64, which is exactly the
    ``& _MASK`` reduction of the scalar loop; per-element ``int(t*1e6)``
    is an ``astype(int64)`` truncation for the non-negative times a
    valid trace carries. Returns ``None`` when the columns are not
    numpy arrays (the ``array`` fallback), sending the caller down the
    scalar loop.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a soft dependency
        return None
    if not isinstance(trace.blocks, np.ndarray):
        return None
    n = len(trace)
    positions = np.arange(1, n + 1, dtype=np.uint64)
    one = np.uint64(1)
    writes = int(trace.is_write.sum())
    volume = int(trace.nblocks.sum())
    block_sum = int(
        (positions * (trace.blocks.astype(np.uint64) + one)).sum(
            dtype=np.uint64
        )
    )
    disk_sum = int(
        (positions * (trace.disks.astype(np.uint64) + one)).sum(
            dtype=np.uint64
        )
    )
    time_sum_us = int(
        (trace.times * US_PER_S).astype(np.int64).astype(np.uint64).sum(
            dtype=np.uint64
        )
    )
    return writes, volume, block_sum, disk_sum, time_sum_us


def trace_fingerprint(trace: Sequence[IORequest] | ColumnarTrace) -> str:
    """Hex SHA-256 identity of a trace, cheap enough to always compute.

    The empty trace has a well-defined fingerprint. Fingerprints are
    order-sensitive: swapping two equal-time records changes the value.
    Columnar traces produce the identical digest to their expanded
    record form (the aggregates vectorize; the sampled records hash the
    same bytes).
    """
    digest = hashlib.sha256()
    n = len(trace)
    aggregates = (
        _columnar_aggregates(trace)
        if n and isinstance(trace, ColumnarTrace)
        else None
    )
    if aggregates is not None:
        writes, volume, block_sum, disk_sum, time_sum_us = aggregates
    else:
        writes = 0
        volume = 0
        block_sum = 0
        disk_sum = 0
        time_sum_us = 0
        for position, req in enumerate(trace, start=1):
            weight = position & _MASK
            writes += req.is_write
            volume += req.nblocks
            block_sum = (block_sum + weight * (req.block + 1)) & _MASK
            disk_sum = (disk_sum + weight * (req.disk + 1)) & _MASK
            time_sum_us = (time_sum_us + int(req.time * US_PER_S)) & _MASK
    span = f"{trace[-1].time - trace[0].time:.6f}" if n else "0"
    digest.update(
        f"n={n};w={writes};v={volume};b={block_sum};"
        f"d={disk_sum};t={time_sum_us};s={span}".encode()
    )
    if n:
        stride = max(1, n // SAMPLE_LIMIT)
        for index in range(0, n, stride):
            digest.update(b"|")
            digest.update(_record_token(trace[index]))
        digest.update(b"|")
        digest.update(_record_token(trace[-1]))
    return digest.hexdigest()
