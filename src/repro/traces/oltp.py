"""OLTP-like workload: the synthetic stand-in for the paper's TPC-C
trace (see DESIGN.md, "Substitutions").

Table 2 publishes the trace's externals — 21 disks, 22% writes, 99 ms
mean inter-arrival, 2 hours — and Section 5.3's analysis reveals the
internals that make PA-LRU win: traffic is heavily skewed across disks.

* A band of *hot* disks (data/index) sees steady exponential traffic
  over a large, weakly-reused footprint: their idle gaps sit far below
  the shallowest break-even time, so they can never park — and their
  miss flood continuously churns the cache (the paper's disk 4).
* A band of *cool* disks sees sparse, bursty traffic over a small
  working set. The working set is re-referenced on a period *longer
  than the cache's eviction age* under plain LRU, so LRU keeps waking
  these disks every couple of break-even times — the worst possible
  regime: deep descents paid for, then immediately unwound. Classified
  priority, the small working sets stay resident, misses collapse to
  roughly the cold set, and the disks sleep through whole epochs (the
  paper's disk 14: LRU mean inter-arrival ~13 s vs PA-LRU ~40 s).

Cool-disk gaps are Pareto with shape 1.8: the distribution's minimum
(``mean * (shape-1)/shape`` ≈ 44% of the mean) keeps every gap above
the shallow thresholds while the heavy tail supplies the long idle
periods — the "larger deviation" Section 4 says creates opportunity.

All knobs are plain config fields so sensitivity studies can move them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.arrivals import ExponentialArrivals, ParetoArrivals
from repro.traces.columnar import ColumnarTrace
from repro.traces.locality import ZipfPopularity
from repro.traces.record import IORequest
from repro.traces.streaming import TraceRow, build_columnar
from repro.units import DEFAULT_BLOCK_SIZE, GIB, HOUR


@dataclass(frozen=True)
class OLTPTraceConfig:
    """Knobs for the OLTP-like generator (defaults match Table 2)."""

    duration_s: float = 2 * HOUR
    num_disks: int = 21
    num_hot_disks: int = 11
    write_ratio: float = 0.22
    mean_interarrival_s: float = 0.099
    #: Per-cool-disk request rate (requests/second). Low by design:
    #: cool working sets are re-referenced slowly.
    cool_disk_rate_hz: float = 0.08
    #: Hot disks: large, weakly reused footprint (capacity misses).
    hot_footprint_blocks: int = 60_000
    hot_zipf_a: float = 1.15
    #: Cool disks: small, uniformly reused working set.
    cool_footprint_blocks: int = 60
    cool_zipf_a: float = 1.0  # <= 1 means uniform
    cool_pareto_shape: float = 1.8
    disk_size_bytes: int = 18 * GIB
    block_size: int = DEFAULT_BLOCK_SIZE
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0 < self.num_hot_disks < self.num_disks:
            raise ConfigurationError(
                "need 0 < num_hot_disks < num_disks (both bands populated)"
            )
        if self.hot_disk_rate <= 0:
            raise ConfigurationError(
                "cool disks consume the whole request budget; lower "
                "cool_disk_rate_hz or mean_interarrival_s"
            )

    @property
    def num_cool_disks(self) -> int:
        return self.num_disks - self.num_hot_disks

    @property
    def total_rate(self) -> float:
        return 1.0 / self.mean_interarrival_s

    @property
    def hot_disk_rate(self) -> float:
        cool_total = self.cool_disk_rate_hz * self.num_cool_disks
        return (self.total_rate - cool_total) / self.num_hot_disks


def iter_oltp_rows(
    config: OLTPTraceConfig = OLTPTraceConfig(),
) -> Iterator[TraceRow]:
    """The OLTP generation loop as a streaming row source (DESIGN §14).

    Each disk runs an independent arrival process (exponential for hot
    disks, Pareto for cool — bursty traffic with a floor on gap length
    is what gives cool disks parkable idle periods); the per-disk
    streams are merged by time. Draw order is part of the trace's
    identity, so both public generators funnel through this one loop.
    """
    rng = np.random.default_rng(config.seed)
    disk_blocks = config.disk_size_bytes // config.block_size

    processes = []
    pickers = []
    for disk in range(config.num_disks):
        hot = disk < config.num_hot_disks
        if hot:
            processes.append(
                ExponentialArrivals(1.0 / config.hot_disk_rate, rng)
            )
            footprint = min(config.hot_footprint_blocks, disk_blocks)
            zipf_a = config.hot_zipf_a
        else:
            processes.append(
                ParetoArrivals(
                    1.0 / config.cool_disk_rate_hz,
                    rng,
                    shape=config.cool_pareto_shape,
                )
            )
            footprint = min(config.cool_footprint_blocks, disk_blocks)
            zipf_a = config.cool_zipf_a
        pickers.append(
            ZipfPopularity(
                footprint=footprint,
                rng=rng,
                zipf_a=zipf_a,
                base_block=(disk * 131_071) % max(1, disk_blocks - footprint),
            )
        )

    # merge the per-disk arrival streams chronologically
    heap: list[tuple[float, int]] = []
    for disk, process in enumerate(processes):
        heapq.heappush(heap, (process.next_gap(), disk))
    while heap:
        time, disk = heapq.heappop(heap)
        if time > config.duration_s:
            continue  # this disk's stream is exhausted
        yield (
            time,
            disk,
            pickers[disk].next_block(),
            1,
            bool(rng.random() < config.write_ratio),
        )
        heapq.heappush(heap, (time + processes[disk].next_gap(), disk))


def generate_oltp_trace(
    config: OLTPTraceConfig = OLTPTraceConfig(),
) -> list[IORequest]:
    """Generate the OLTP-like trace (deterministic given ``config.seed``)."""
    return [
        IORequest(time=t, disk=d, block=b, is_write=w)
        for t, d, b, _, w in iter_oltp_rows(config)
    ]


def generate_oltp_trace_columnar(
    config: OLTPTraceConfig = OLTPTraceConfig(),
) -> ColumnarTrace:
    """:func:`generate_oltp_trace` streamed straight into columns.

    Same seed, same draws, same requests — an equivalence test pins the
    two representations to identical fingerprints.
    """
    return build_columnar(iter_oltp_rows(config))
