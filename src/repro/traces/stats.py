"""Trace characterization — the numbers of the paper's Table 2,
plus per-disk breakdowns for workload exploration."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.traces.record import IORequest
from repro.units import MS_PER_S


@dataclass(frozen=True)
class TraceCharacteristics:
    """Summary statistics for one trace (Table 2 columns)."""

    requests: int
    disks: int
    write_fraction: float
    mean_interarrival_s: float
    duration_s: float
    distinct_blocks: int
    cold_fraction: float  # distinct blocks / accesses: lower bound on reuse

    def table_row(self, name: str) -> str:
        """Render one Table 2 style row."""
        return (
            f"{name:10s} {self.disks:5d} {self.write_fraction:7.0%} "
            f"{self.mean_interarrival_s * MS_PER_S:10.2f}ms "
            f"{self.requests:9d} {self.cold_fraction:7.0%}"
        )


def characterize(trace: Sequence[IORequest]) -> TraceCharacteristics:
    """Compute Table 2 statistics for a trace."""
    if not trace:
        return TraceCharacteristics(0, 0, 0.0, 0.0, 0.0, 0, 0.0)
    writes = sum(1 for r in trace if r.is_write)
    disks = len({r.disk for r in trace})
    duration = trace[-1].time - trace[0].time
    mean_gap = duration / (len(trace) - 1) if len(trace) > 1 else 0.0
    distinct = set()
    accesses = 0
    for req in trace:
        for key in req.block_keys():
            distinct.add(key)
            accesses += 1
    return TraceCharacteristics(
        requests=len(trace),
        disks=disks,
        write_fraction=writes / len(trace),
        mean_interarrival_s=mean_gap,
        duration_s=duration,
        distinct_blocks=len(distinct),
        cold_fraction=len(distinct) / accesses if accesses else 0.0,
    )


@dataclass(frozen=True)
class DiskCharacteristics:
    """Per-disk view of a trace: the raw material of PA's classifier."""

    disk: int
    requests: int
    write_fraction: float
    mean_interarrival_s: float
    distinct_blocks: int
    reuse_fraction: float  # 1 - distinct/requests: repeat-access share


def characterize_disks(
    trace: Sequence[IORequest],
) -> list[DiskCharacteristics]:
    """Per-disk characteristics, ordered by disk id.

    Useful for understanding which disks a power-aware policy could
    classify as priority: low request rates, high reuse, long gaps.
    """
    count: dict[int, int] = defaultdict(int)
    writes: dict[int, int] = defaultdict(int)
    first: dict[int, float] = {}
    last: dict[int, float] = {}
    blocks: dict[int, set] = defaultdict(set)
    for req in trace:
        d = req.disk
        count[d] += 1
        if req.is_write:
            writes[d] += 1
        first.setdefault(d, req.time)
        last[d] = req.time
        for key in req.block_keys():
            blocks[d].add(key[1])
    out = []
    for d in sorted(count):
        n = count[d]
        span = last[d] - first[d]
        out.append(
            DiskCharacteristics(
                disk=d,
                requests=n,
                write_fraction=writes[d] / n,
                mean_interarrival_s=span / (n - 1) if n > 1 else float("inf"),
                distinct_blocks=len(blocks[d]),
                reuse_fraction=1.0 - len(blocks[d]) / n if n else 0.0,
            )
        )
    return out
