#!/usr/bin/env python3
"""Data-center scenario: the paper's full replacement-policy study.

Runs the five cache policies of Figure 6 (infinite cache, Belady, OPG,
LRU, PA-LRU) over the 2-hour OLTP-like workload under both Oracle and
Practical disk power management, then prints the normalized energy
bars, the response-time comparison, and the per-disk story behind
PA-LRU's win (the Figure 7 breakdowns).

Run (takes a couple of minutes):
    python examples/oltp_datacenter.py
"""

from repro import generate_oltp_trace
from repro.analysis.figures import replacement_comparison, time_breakdown_comparison
from repro.analysis.tables import ascii_table
from repro.traces.oltp import OLTPTraceConfig

CACHE_BLOCKS = 2048
POLICIES = ("infinite", "belady", "opg", "lru", "pa-lru")


def main() -> None:
    print("generating the 2-hour OLTP-like trace...")
    trace = generate_oltp_trace()
    print(f"  {len(trace):,} requests\n")

    print("running 5 policies x 2 DPM schemes (10 simulations)...\n")
    results = replacement_comparison(
        trace, num_disks=21, cache_blocks=CACHE_BLOCKS
    )

    rows = []
    for dpm in ("oracle", "practical"):
        base = results[dpm]["lru"].total_energy_j
        rows.append(
            [dpm]
            + [f"{results[dpm][p].total_energy_j / base:.3f}" for p in POLICIES]
        )
    print(ascii_table(["DPM"] + list(POLICIES), rows,
                      title="Disk energy normalized to LRU (Figure 6a)"))
    print()

    base_rt = results["practical"]["lru"].response.mean_s
    rows = [
        [p, f"{results['practical'][p].response.mean_s * 1000:.0f} ms",
         f"{results['practical'][p].response.mean_s / base_rt:.2f}"]
        for p in POLICIES
    ]
    print(ascii_table(["policy", "mean response", "vs LRU"], rows,
                      title="Response time under Practical DPM (Figure 6c)"))
    print()

    lru, pa = results["practical"]["lru"], results["practical"]["pa-lru"]
    hot, cool = 0, OLTPTraceConfig().num_disks - 1
    breakdown = time_breakdown_comparison(lru, pa, [hot, cool])
    rows = [
        [r["disk"], r["policy"],
         f"{r['breakdown'].get('mode:0', 0):.0%}",
         f"{r['breakdown'].get('mode:5', 0):.0%}",
         f"{r['breakdown'].get('transition', 0):.0%}",
         f"{r['mean_interarrival_s']:.1f} s"]
        for r in breakdown
    ]
    print(ascii_table(
        ["disk", "policy", "full speed", "standby", "spin up/down",
         "mean inter-arrival"],
        rows,
        title=f"Why PA-LRU wins: hot disk {hot} vs cool disk {cool} "
        "(Figure 7)",
    ))


if __name__ == "__main__":
    main()
