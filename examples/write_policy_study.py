#!/usr/bin/env python3
"""Write-policy study: WT vs WB vs WBEU vs WTDU (Section 6).

Sweeps the write ratio on the Table-3 synthetic workload, printing each
policy's energy savings over write-through — then demonstrates WTDU's
crash-recovery machinery on its timestamped log regions.

Run:
    python examples/write_policy_study.py
"""

from repro import LogDevice, generate_synthetic_trace, run_simulation
from repro.analysis.tables import ascii_table
from repro.traces.synthetic import SyntheticTraceConfig

POLICIES = ("write-back", "wbeu", "wtdu")
WRITE_RATIOS = (0.2, 0.5, 0.8, 1.0)


def energy_sweep() -> None:
    rows = []
    for write_ratio in WRITE_RATIOS:
        trace = generate_synthetic_trace(
            SyntheticTraceConfig(num_requests=20_000, write_ratio=write_ratio)
        )
        wt = run_simulation(
            trace, "lru", num_disks=20, cache_blocks=2048,
            write_policy="write-through",
        )
        row = [f"{write_ratio:.0%}"]
        for policy in POLICIES:
            result = run_simulation(
                trace, "lru", num_disks=20, cache_blocks=2048,
                write_policy=policy,
            )
            row.append(f"{result.savings_over(wt):+.1%}")
        rows.append(row)
    print(ascii_table(
        ["write ratio", "WB vs WT", "WBEU vs WT", "WTDU vs WT"],
        rows,
        title="Energy savings over write-through (Figure 9, one slice)",
    ))


def recovery_demo() -> None:
    print("\nWTDU crash recovery demo")
    print("------------------------")
    log = LogDevice(num_disks=2, region_capacity_blocks=8)
    print("disk 0 is asleep; three writes are deferred into its log region:")
    for block in (10, 11, 12):
        log.append(0, (0, block))
        print(f"  logged block {block} @ timestamp {log.regions[0].timestamp}")
    print("disk 0 wakes; cached copies are written home; region flushed")
    log.flush(0)
    print("two more writes deferred in the new epoch:")
    for block in (13, 14):
        log.append(0, (0, block))
        print(f"  logged block {block} @ timestamp {log.regions[0].timestamp}")
    print("CRASH! recovering from the log regions...")
    pending = log.recover_all()
    print(f"  blocks to replay to disk 0: {sorted(b for _, b in pending[0])}")
    print("  (epoch-0 blocks 10-12 are on disk already: stale stamps)")
    assert sorted(b for _, b in pending[0]) == [13, 14]


def main() -> None:
    energy_sweep()
    recovery_demo()


if __name__ == "__main__":
    main()
