#!/usr/bin/env python3
"""Spin-up cost sensitivity (Figure 8) on a reduced workload.

How robust is PA-LRU's advantage to the disk's transition cost? Sweeps
the standby→active spin-up energy and prints the savings curve with an
ASCII bar per point.

Run:
    python examples/spinup_sensitivity.py
"""

from repro import OLTPTraceConfig, generate_oltp_trace
from repro.analysis.figures import spinup_cost_sweep

COSTS = [33.75, 67.5, 135.0, 270.0, 675.0]
CACHE_BLOCKS = 2048


def main() -> None:
    print("generating a 1-hour OLTP-like trace...")
    trace = generate_oltp_trace(OLTPTraceConfig(duration_s=3600.0))
    print(f"  {len(trace):,} requests\n")
    print("sweeping spin-up cost (2 simulations per point)...\n")
    points = spinup_cost_sweep(
        trace, num_disks=21, cache_blocks=CACHE_BLOCKS, spinup_costs_j=COSTS
    )
    print("spin-up cost    PA-LRU savings over LRU")
    for cost, saving in points:
        bar = "#" * max(0, round(saving * 100))
        marker = "  <- IBM Ultrastar 36Z15" if cost == 135.0 else ""
        print(f"{cost:10.2f} J   {saving:6.1%}  {bar}{marker}")
    print(
        "\nThe paper's observation: savings are stable across the "
        "67.5-270 J band\nwhere real SCSI disks live, and shrink at "
        "both extremes."
    )


if __name__ == "__main__":
    main()
