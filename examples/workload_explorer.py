#!/usr/bin/env python3
"""Workload exploration: which disks could a power-aware cache help?

Characterizes the OLTP-like trace per disk — request rates, reuse, mean
gaps — and relates that to what PA-LRU's classifier will decide: disks
with high reuse and gaps beyond the NAP1 break-even are priority-class
material. Finishes with a small grid sweep over cache sizes showing how
the PA advantage depends on cache pressure.

Run:
    python examples/workload_explorer.py
"""

from repro import OLTPTraceConfig, generate_oltp_trace
from repro.analysis.plotting import sparkline
from repro.analysis.tables import ascii_table
from repro.power.envelope import EnergyEnvelope
from repro.power.specs import build_power_model
from repro.sim.sweep import grid_sweep
from repro.traces.stats import characterize, characterize_disks


def main() -> None:
    config = OLTPTraceConfig(duration_s=2400.0)
    trace = generate_oltp_trace(config)
    overall = characterize(trace)
    print(overall.table_row("OLTP") + "\n")

    threshold = EnergyEnvelope(build_power_model()).breakeven_time(1)
    per_disk = characterize_disks(trace)
    rows = []
    for d in per_disk:
        parkable = (
            d.mean_interarrival_s > threshold and d.reuse_fraction > 0.5
        )
        rows.append(
            [
                d.disk,
                d.requests,
                f"{d.mean_interarrival_s:.2f} s",
                d.distinct_blocks,
                f"{d.reuse_fraction:.0%}",
                "priority material" if parkable else "-",
            ]
        )
    print(ascii_table(
        ["disk", "requests", "mean gap", "distinct blocks", "reuse",
         f"vs NAP1 break-even ({threshold:.1f} s)"],
        rows,
        title="Per-disk workload characteristics",
    ))

    gaps = [d.mean_interarrival_s for d in per_disk]
    print(f"\nper-disk mean gap profile: {sparkline(gaps)} "
          f"(disks 0..{len(gaps) - 1})")

    print("\nsweeping cache size (lru + pa-lru per point)...\n")
    sweep = grid_sweep(
        trace,
        axes={"policy": ["lru", "pa-lru"],
              "cache_blocks": [512, 2048, 8192]},
        num_disks=config.num_disks,
        cache_blocks=None,  # overridden per point by the axis
        pa_epoch_s=300.0,
    )
    by = {
        (p.params["policy"], p.params["cache_blocks"]): p.result
        for p in sweep.points
    }
    rows = []
    for blocks in (512, 2048, 8192):
        lru, pa = by[("lru", blocks)], by[("pa-lru", blocks)]
        rows.append(
            [
                f"{blocks} ({blocks * 8 // 1024} MiB)",
                f"{lru.total_energy_j / 1e3:.0f} kJ",
                f"{pa.total_energy_j / 1e3:.0f} kJ",
                f"{pa.savings_over(lru):+.1%}",
            ]
        )
    print(ascii_table(
        ["cache size", "LRU energy", "PA-LRU energy", "PA savings"],
        rows,
        title="Cache-size sensitivity (40-minute trace)",
    ))
    print(
        "\nThe PA advantage needs cache *pressure*: with a huge cache, "
        "LRU already\nkeeps the cool working sets resident and there is "
        "nothing left to win."
    )


if __name__ == "__main__":
    main()
