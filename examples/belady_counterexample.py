#!/usr/bin/env python3
"""The Figure 3 worked example: Belady's MIN is not energy-optimal.

Replays the paper's request string against a 4-entry cache and a
2-mode disk that spins down after 10 idle time-units, printing the
per-step cache contents and an ASCII power-state timeline for both
Belady and the power-aware (OPG) schedule.

Run:
    python examples/belady_counterexample.py
"""

from repro.cache.policies.belady import BeladyPolicy
from repro.core.energy_optimal import idle_energy_of, simulate_misses
from repro.core.opg import OPGPolicy

REQUESTS = {0: "A", 1: "B", 2: "C", 3: "D", 4: "E", 5: "B", 6: "E",
            7: "C", 8: "D", 16: "A"}
THRESHOLD = 10.0
END_TIME = 30.0


def energy_fn(gap: float) -> float:
    """Threshold DPM of the example: burn 1/unit for up to 10 units."""
    return min(gap, THRESHOLD)


def timeline(miss_times: set[float]) -> str:
    """ASCII power-state strip: # = active/idle, . = standby."""
    strip = []
    last_active = 0.0
    for t in range(int(END_TIME) + 1):
        since = t - max((m for m in miss_times if m <= t), default=0.0)
        strip.append("." if since > THRESHOLD else "#")
    return "".join(strip)


def replay(name, policy):
    accesses = [(float(t), (0, ord(c))) for t, c in sorted(REQUESTS.items())]
    misses = simulate_misses(accesses, 4, policy)
    miss_times = {t for t, _ in misses}
    energy = idle_energy_of(misses, energy_fn, end_time=END_TIME)
    print(f"{name}:")
    print(f"  misses ({len(misses)}): "
          + " ".join(f"{chr(k[1])}@{t:.0f}" for t, k in misses))
    print(f"  disk:   {timeline(miss_times)}   (#=spinning, .=standby)")
    print(f"  energy: {energy:.0f} units\n")
    return len(misses), energy


def main() -> None:
    print("Request sequence: "
          + "  ".join(f"{c}@{t}" for t, c in sorted(REQUESTS.items())))
    print(f"Cache: 4 entries; disk spins down after {THRESHOLD:.0f} idle "
          "units\n")
    belady_misses, belady_energy = replay("Belady (minimal misses)",
                                          BeladyPolicy())
    opg_misses, opg_energy = replay(
        "Power-aware (OPG)", OPGPolicy(energy_fn, tail_s=END_TIME - 16.0)
    )
    print(f"Belady took {belady_misses} misses / {belady_energy:.0f} energy;")
    print(f"OPG    took {opg_misses} misses / {opg_energy:.0f} energy.")
    print("More misses, less energy — Figure 3 in action.")


if __name__ == "__main__":
    main()
