#!/usr/bin/env python3
"""The two multi-speed disk designs, head to head (Section 2.1).

The paper picks "serve only at full speed" for its multi-speed disks;
Carrera & Bianchini's DRPM-style design serves at any rotational speed.
This example runs LRU and PA-LRU over the OLTP-like workload under both
designs and plots the energy / response / spin-up trade as terminal
bar charts.

Run (takes ~1 minute):
    python examples/drpm_comparison.py
"""

from repro import OLTPTraceConfig, generate_oltp_trace
from repro.analysis.plotting import bar_chart
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation

CACHE_BLOCKS = 2048


def main() -> None:
    print("generating a 1-hour OLTP-like trace...")
    trace = generate_oltp_trace(OLTPTraceConfig(duration_s=3600.0))
    print(f"  {len(trace):,} requests\n")

    results = {}
    for design in ("full-speed-only", "all-speed"):
        config = SimulationConfig(
            num_disks=21,
            cache_capacity_blocks=CACHE_BLOCKS,
            disk_design=design,
        )
        for policy in ("lru", "pa-lru"):
            print(f"simulating {policy} on {design} disks...")
            results[f"{design}/{policy}"] = run_simulation(
                trace, policy, num_disks=21, cache_blocks=CACHE_BLOCKS,
                config=config,
            )
    print()

    labels = list(results)
    print(bar_chart(
        labels,
        [round(results[k].total_energy_j / 1e3, 1) for k in labels],
        unit=" kJ",
        title="Total disk energy",
    ))
    print()
    print(bar_chart(
        labels,
        [round(results[k].response.mean_s * 1000, 1) for k in labels],
        unit=" ms",
        title="Mean response time",
    ))
    print()
    print(bar_chart(
        labels,
        [float(results[k].spinups) for k in labels],
        title="Full spin-ups",
    ))
    print()
    fso = results["full-speed-only/lru"]
    als = results["all-speed/lru"]
    print(
        "The trade: the all-speed (DRPM) design wipes out the wake-delay "
        "tail\n"
        f"  p95 response: {fso.response.p95_s * 1000:7.0f} ms  ->  "
        f"{als.response.p95_s * 1000:.0f} ms\n"
        "while transfers at NAP speeds run proportionally slower. "
        "PA-LRU helps\nunder both designs — the cache-level technique is "
        "orthogonal to the\ndisk-level mechanism."
    )


if __name__ == "__main__":
    main()
