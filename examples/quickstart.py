#!/usr/bin/env python3
"""Quickstart: is power-aware caching worth it on your workload?

Generates a small OLTP-like workload (20 minutes, 21 disks), runs the
plain LRU storage cache and the paper's PA-LRU against the same
multi-speed disk array, and reports energy and response time.

Run:
    python examples/quickstart.py
"""

from repro import OLTPTraceConfig, generate_oltp_trace, run_simulation

CACHE_BLOCKS = 2048  # 16 MiB of 8 KiB blocks


def main() -> None:
    print("generating workload (40 simulated minutes, 21 disks)...")
    trace = generate_oltp_trace(OLTPTraceConfig(duration_s=2400.0))
    print(f"  {len(trace):,} requests\n")

    results = {}
    for policy in ("lru", "pa-lru"):
        print(f"simulating {policy} ...")
        # a 5-minute classification epoch suits the short demo trace;
        # the paper uses 15 minutes against its 2-hour trace
        results[policy] = run_simulation(
            trace,
            policy,
            num_disks=21,
            cache_blocks=CACHE_BLOCKS,
            dpm="practical",
            pa_epoch_s=300.0,
        )

    lru, pa = results["lru"], results["pa-lru"]
    print()
    print(lru.summary())
    print(pa.summary())
    print()
    print(f"PA-LRU energy savings over LRU : {pa.savings_over(lru):6.1%}")
    print(
        "PA-LRU mean response vs LRU    : "
        f"{pa.response.mean_s / lru.response.mean_s:6.2f}x"
    )
    print(f"spin-ups avoided               : {lru.spinups - pa.spinups}")


if __name__ == "__main__":
    main()
