#!/usr/bin/env python3
"""Closed-loop OLTP: when spin-ups throttle the clients.

TPC-C terminals are a *closed* system — a client blocked on a
10.9-second spin-up submits nothing until it completes. This example
runs LRU and PA-LRU against the same closed client population and shows
the effect open-loop traces cannot express: the power-aware cache not
only saves energy, it gives the blocked clients their throughput back.

Run:
    python examples/closed_loop_oltp.py
"""

import numpy as np

from repro.analysis.tables import ascii_table
from repro.cache.policies.lru import LRUPolicy
from repro.core.pa import make_pa_lru
from repro.power.envelope import EnergyEnvelope
from repro.power.specs import build_power_model
from repro.sim.closedloop import ClosedLoopSimulator, HotCoolWorkload
from repro.sim.config import SimulationConfig

NUM_DISKS = 21
CACHE_BLOCKS = 1024
DURATION_S = 2400.0
CLIENTS = 24
THINK_S = 1.0


def build_policy(name):
    if name == "lru":
        return LRUPolicy()
    threshold = EnergyEnvelope(build_power_model()).breakeven_time(1)
    return make_pa_lru(
        num_disks=NUM_DISKS, threshold_t=threshold, epoch_length_s=300.0
    )


def main() -> None:
    rows = []
    for name in ("lru", "pa-lru"):
        print(f"running closed loop with {name} "
              f"({CLIENTS} clients, {DURATION_S / 60:.0f} min)...")
        sim = ClosedLoopSimulator(
            SimulationConfig(
                num_disks=NUM_DISKS, cache_capacity_blocks=CACHE_BLOCKS
            ),
            build_policy(name),
            HotCoolWorkload(np.random.default_rng(5), num_disks=NUM_DISKS),
            num_clients=CLIENTS,
            mean_think_time_s=THINK_S,
            duration_s=DURATION_S,
            seed=5,
            label=name,
        )
        result = sim.run()
        rows.append(
            [
                name,
                f"{sim.throughput_hz:.2f} req/s",
                f"{result.response.mean_s * 1000:.0f} ms",
                f"{result.response.p95_s * 1000:.0f} ms",
                f"{result.total_energy_j / 1e3:.0f} kJ",
                f"{result.total_energy_j / sim.completed_requests:.1f} J",
                result.spinups,
            ]
        )
    print()
    print(ascii_table(
        ["policy", "throughput", "mean resp", "p95 resp",
         "energy", "energy/request", "spinups"],
        rows,
        title="Closed-loop OLTP: the feedback effect of power-aware caching",
    ))
    print(
        "\nEnergy per *completed request* is the closed-loop figure of "
        "merit:\nthe power-aware cache both spends less and serves more."
    )


if __name__ == "__main__":
    main()
